//! # store — content-addressed block database for DJVB traces
//!
//! DJVB files are write-once single-run artifacts; a fleet serving many
//! runs of the same workload family pays full price in bytes and cold
//! decode for every run. This crate turns the block layer into a
//! storage engine (ROADMAP item 1, mirroring the ethrex
//! store/backend/snapshot split):
//!
//! * [`backend`] — the persistence layer: self-validating block record
//!   files keyed by content digest ([`codec::digest128`] of the raw,
//!   pre-compression payload), atomic tmp+rename writes, catalog and
//!   heat-map files.
//! * [`catalog`] — one canonical-JSON manifest per run: workload, seed,
//!   format, block-digest list, fingerprint, policy pointer. A run is a
//!   *view* over shared blocks; identical blocks across runs store once.
//! * [`snapshot`] — the checkpoint tier: a bounded decoded-block cache
//!   plus per-block logical-time boundaries, so `TimeTravel` seeks
//!   served from the store keep the ≤-one-block-span guarantee.
//! * [`compact`] — GC of unreferenced blocks and heat-driven tier
//!   migration (cold → order-1 range coder, hot → LZ77), deterministic
//!   and idempotent.
//!
//! ## Byte fidelity
//!
//! `put` deconstructs a trace file into raw block payloads; `get`
//! re-runs each block's original compressor and reassembles the exact
//! original file bytes (validated against the recorded length). Both
//! compressors are deterministic pure functions, so the store can hand
//! back a file that passes a binary `cmp` against what was put —
//! fingerprints are untouched by construction, not by trust.
//!
//! ## Perturbation-freedom
//!
//! Store maintenance (dedup, tier migration, GC, caching) only ever
//! rewrites *representations* of raw block bytes, never the bytes
//! themselves, and replay output is a pure function of those bytes. The
//! integration tests replay store-served traces under concurrent
//! compaction and assert bit-identical fingerprints.

pub mod backend;
pub mod catalog;
pub mod compact;
pub mod error;
pub mod snapshot;

pub use backend::Backend;
pub use catalog::{BlockRef, CatalogEntry};
pub use compact::{CompactReport, GcReport};
pub use error::StoreError;
pub use snapshot::{BlockCache, BlockKey, StoredTrace, DEFAULT_CACHE_BLOCKS};

use codec::{digest128, Digest128, Json};
use dejavu::blocktrace::encode_block;
use dejavu::{
    assemble_block_file, decode_block_events, BlockFile, RawBlock, TraceFormat,
    DEFAULT_BLOCK_BUDGET,
};
use snapshot::DecodedBlock;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{Arc, Mutex};
use telemetry::Registry;

/// Blocks read fewer than this many times count as cold for
/// [`Store::compact`] unless the caller chooses otherwise.
pub const DEFAULT_COLD_THRESHOLD: u64 = 2;

/// What one `put` did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// Catalog entry id (the content identity of the run).
    pub entry: String,
    /// False when an identical run was already cataloged.
    pub new_entry: bool,
    pub blocks_total: u64,
    /// Blocks actually written (the rest deduped against the store).
    pub blocks_new: u64,
    /// The entry's fingerprint after merge (0 = still unverified).
    pub fingerprint: u64,
}

impl PutOutcome {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("blocks_new", Json::UInt(self.blocks_new)),
            ("blocks_total", Json::UInt(self.blocks_total)),
            ("entry", Json::Str(self.entry.clone())),
            ("fingerprint", Json::UInt(self.fingerprint)),
            ("new_entry", Json::Bool(self.new_entry)),
        ])
    }
}

/// Mutable store state behind one lock: access heat, the decoded-block
/// cache, and the observer counters. Filesystem writes happen outside
/// the lock (they are atomic per file); the lock only guards in-process
/// bookkeeping, so concurrent fleet sessions share one `Store` cheaply.
struct State {
    heat: BTreeMap<Digest128, u64>,
    heat_dirty: bool,
    cache: BlockCache,
    metrics: Registry,
}

/// A content-addressed trace store rooted at one directory. All methods
/// take `&self`; share it as `Arc<Store>` across threads.
pub struct Store {
    backend: Backend,
    state: Mutex<State>,
}

impl Store {
    /// Open (and create if absent) a store at `root`.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        let backend = Backend::open(root)?;
        let heat = load_heat(&backend)?;
        Ok(Store {
            backend,
            state: Mutex::new(State {
                heat,
                heat_dirty: false,
                cache: BlockCache::new(DEFAULT_CACHE_BLOCKS),
                metrics: Registry::new(),
            }),
        })
    }

    pub fn root(&self) -> &Path {
        self.backend.root()
    }

    /// Ingest one serialized trace file (either format). Blocks dedup
    /// against everything already stored; the catalog entry converges
    /// across repeated puts of the same run, with `fingerprint`
    /// upgrading 0 → verified in place. Two *verified* puts that
    /// disagree are a [`StoreError::FingerprintMismatch`].
    pub fn put_bytes(
        &self,
        workload: &str,
        seed: u64,
        bytes: &[u8],
        fingerprint: u64,
        policy: &str,
    ) -> Result<PutOutcome, StoreError> {
        let format = dejavu::sniff_format(bytes)?;
        let (paranoid, budget, raw_blocks) = match format {
            TraceFormat::Block => {
                let bf = BlockFile::parse(bytes.to_vec())?;
                (bf.paranoid, bf.budget, bf.raw_blocks()?)
            }
            TraceFormat::Flat => {
                // Flat sources are blockified for storage at the default
                // budget; `get` reconstructs the flat bytes through the
                // decoded trace (`Trace::encoded` is a pure function).
                let ingested = dejavu::ingest_bytes(bytes.to_vec())?;
                let enc = encode_block(&ingested.trace, DEFAULT_BLOCK_BUDGET);
                let bf = BlockFile::parse(enc)?;
                (bf.paranoid, bf.budget, bf.raw_blocks()?)
            }
        };

        let mut blocks = Vec::with_capacity(raw_blocks.len());
        let mut blocks_new = 0u64;
        let mut bytes_written = 0u64;
        for rb in &raw_blocks {
            let digest = digest128(&rb.raw);
            let (_, written, was_new) = self.backend.write_block(digest, &rb.raw, rb.method)?;
            if was_new {
                blocks_new += 1;
                bytes_written += written;
            }
            blocks.push(BlockRef {
                digest,
                event_count: rb.event_count,
                switch_count: rb.switch_count,
                first_logical_time: rb.first_logical_time,
                method: rb.method,
                raw_len: rb.raw.len() as u32,
            });
        }

        let mut entry = CatalogEntry {
            workload: workload.to_owned(),
            seed,
            format: format.name().to_owned(),
            paranoid,
            budget,
            file_bytes: bytes.len() as u64,
            fingerprint,
            policy: policy.to_owned(),
            puts: 1,
            blocks,
        };
        let id = entry.identity();

        let path = self.backend.catalog_path(&id);
        let mut new_entry = true;
        if path.exists() {
            let existing = self.read_entry(&id)?;
            if existing.fingerprint != 0 && fingerprint != 0 && existing.fingerprint != fingerprint
            {
                return Err(StoreError::FingerprintMismatch {
                    entry: id,
                    have: existing.fingerprint,
                    got: fingerprint,
                });
            }
            new_entry = false;
            if entry.fingerprint == 0 {
                entry.fingerprint = existing.fingerprint;
            }
            if entry.policy.is_empty() {
                entry.policy = existing.policy.clone();
            }
            entry.puts = existing.puts.saturating_add(1);
        }
        self.backend
            .write_atomic(&path, entry.to_json().to_string().as_bytes())?;

        let mut st = self.lock();
        if new_entry {
            st.metrics.incr("store.entries_put");
        } else {
            st.metrics.incr("store.entries_deduped");
        }
        st.metrics.add("store.blocks_stored", blocks_new);
        st.metrics
            .add("store.blocks_deduped", raw_blocks.len() as u64 - blocks_new);
        st.metrics.add("store.bytes_written", bytes_written);
        Ok(PutOutcome {
            fingerprint: entry.fingerprint,
            entry: id,
            new_entry,
            blocks_total: raw_blocks.len() as u64,
            blocks_new,
        })
    }

    /// Reconstruct the exact original file bytes of an entry.
    pub fn get_bytes(&self, id: &str) -> Result<Vec<u8>, StoreError> {
        let entry = self.read_entry(id)?;
        let mut raw_blocks = Vec::with_capacity(entry.blocks.len());
        let mut bytes_read = 0u64;
        for bref in &entry.blocks {
            let (_, raw) = self.backend.read_block(bref.digest)?;
            if raw.len() as u64 != bref.raw_len as u64 {
                return Err(StoreError::Corrupt(format!(
                    "block {}: raw length disagrees with catalog",
                    bref.digest
                )));
            }
            bytes_read += raw.len() as u64;
            raw_blocks.push(RawBlock {
                first_logical_time: bref.first_logical_time,
                event_count: bref.event_count,
                switch_count: bref.switch_count,
                method: bref.method,
                raw,
            });
        }
        let bytes = match entry.format.as_str() {
            "block" => assemble_block_file(entry.paranoid, entry.budget, &raw_blocks),
            _ => {
                let decoded = raw_blocks
                    .iter()
                    .map(|rb| {
                        decode_block_events(&rb.raw, rb.event_count, rb.switch_count, entry.paranoid)
                            .map(Arc::new)
                    })
                    .collect::<Result<Vec<DecodedBlock>, _>>()?;
                snapshot::splice_blocks(entry.paranoid, decoded)?.encoded()
            }
        };
        if bytes.len() as u64 != entry.file_bytes {
            return Err(StoreError::Corrupt(format!(
                "entry {id}: reconstruction is {} bytes, catalog says {}",
                bytes.len(),
                entry.file_bytes
            )));
        }
        let mut st = self.lock();
        st.metrics.add("store.bytes_read", bytes_read);
        for bref in &entry.blocks {
            *st.heat.entry(bref.digest).or_insert(0) += 1;
        }
        st.heat_dirty = true;
        Ok(bytes)
    }

    /// Open an entry for replay: decoded trace + checkpoint boundaries,
    /// served through the snapshot tier (shared blocks decode once per
    /// process, counted as checkpoint hits/misses).
    pub fn open_trace(&self, id: &str) -> Result<StoredTrace, StoreError> {
        let entry = self.read_entry(id)?;
        let mut decoded: Vec<DecodedBlock> = Vec::with_capacity(entry.blocks.len());
        for bref in &entry.blocks {
            let key = BlockKey {
                digest: bref.digest,
                paranoid: entry.paranoid,
                event_count: bref.event_count,
                switch_count: bref.switch_count,
            };
            let cached = {
                let mut st = self.lock();
                let hit = st.cache.get(&key);
                if hit.is_some() {
                    st.metrics.incr("store.checkpoint_hits");
                } else {
                    st.metrics.incr("store.checkpoint_misses");
                }
                hit
            };
            let block = match cached {
                Some(b) => b,
                None => {
                    let (_, raw) = self.backend.read_block(bref.digest)?;
                    if raw.len() as u64 != bref.raw_len as u64 {
                        return Err(StoreError::Corrupt(format!(
                            "block {}: raw length disagrees with catalog",
                            bref.digest
                        )));
                    }
                    let events = decode_block_events(
                        &raw,
                        bref.event_count,
                        bref.switch_count,
                        entry.paranoid,
                    )?;
                    let arc: DecodedBlock = Arc::new(events);
                    let mut st = self.lock();
                    st.metrics.add("store.bytes_read", raw.len() as u64);
                    st.cache.insert(key, arc.clone());
                    arc
                }
            };
            decoded.push(block);
        }
        let trace = snapshot::splice_blocks(entry.paranoid, decoded)?;
        {
            let mut st = self.lock();
            for bref in &entry.blocks {
                *st.heat.entry(bref.digest).or_insert(0) += 1;
            }
            st.heat_dirty = !entry.blocks.is_empty() || st.heat_dirty;
        }
        let boundaries = entry.boundaries();
        Ok(StoredTrace {
            entry,
            trace,
            boundaries,
        })
    }

    /// One catalog entry.
    pub fn entry(&self, id: &str) -> Result<CatalogEntry, StoreError> {
        self.read_entry(id)
    }

    /// All catalog entries, sorted by id.
    pub fn entries(&self) -> Result<Vec<CatalogEntry>, StoreError> {
        self.backend
            .list_catalog()?
            .into_iter()
            .map(|(id, _)| self.read_entry(&id))
            .collect()
    }

    /// Remove unreferenced blocks, stale temp files, and dead heat
    /// counters.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let referenced: BTreeSet<Digest128> = self
            .entries()?
            .iter()
            .flat_map(|e| e.blocks.iter().map(|b| b.digest))
            .collect();
        let mut heat = {
            let st = self.lock();
            st.heat.clone()
        };
        let report = compact::gc_pass(&self.backend, &referenced, &mut heat)?;
        let mut st = self.lock();
        st.heat = heat;
        st.heat_dirty = st.heat_dirty || report.pruned_heat > 0;
        st.metrics.add("store.gc_removed", report.removed_blocks);
        drop(st);
        self.flush()?;
        Ok(report)
    }

    /// Heat-driven tier migration: blocks with fewer than
    /// `cold_threshold` client reads move to the range-coder tier, the
    /// rest to LZ77 (either degrading to stored when compression does
    /// not pay). Idempotent: a second pass with unchanged heat issues
    /// zero writes.
    pub fn compact(&self, cold_threshold: u64) -> Result<CompactReport, StoreError> {
        let heat = {
            let st = self.lock();
            st.heat.clone()
        };
        let report = compact::compact_pass(&self.backend, &heat, cold_threshold)?;
        let mut st = self.lock();
        st.metrics.add("store.blocks_compacted", report.migrated);
        Ok(report)
    }

    /// Deterministic disk-shape statistics: a pure function of store
    /// *content* (catalog + blocks), independent of access history, so
    /// byte-stable across gc/compact idempotence checks.
    pub fn disk_stats(&self) -> Result<Json, StoreError> {
        let entries = self.entries()?;
        // Naive cost = one file per *put run* (repeated puts of the same
        // run converge on one entry but would each have been a file).
        let naive_bytes: u64 = entries.iter().map(|e| e.file_bytes * e.puts).sum();
        let runs: u64 = entries.iter().map(|e| e.puts).sum();
        let total_refs: u64 = entries.iter().map(|e| e.blocks.len() as u64).sum();
        let blocks = self.backend.list_blocks()?;
        let block_bytes: u64 = blocks.iter().map(|&(_, len)| len).sum();
        let catalog_bytes: u64 = self
            .backend
            .list_catalog()?
            .iter()
            .map(|&(_, len)| len)
            .sum();
        let (mut tier_stored, mut tier_lz77, mut tier_range) = (0u64, 0u64, 0u64);
        for &(digest, _) in &blocks {
            match self.backend.read_block(digest)?.0 {
                dejavu::BlockMethod::Stored => tier_stored += 1,
                dejavu::BlockMethod::Lz77 => tier_lz77 += 1,
                dejavu::BlockMethod::Range => tier_range += 1,
            }
        }
        let store_bytes = block_bytes + catalog_bytes;
        let dedup_ratio_milli = if store_bytes == 0 {
            0
        } else {
            naive_bytes * 1000 / store_bytes
        };
        let bytes_per_run = if runs == 0 { 0 } else { store_bytes / runs };
        let naive_bytes_per_run = if runs == 0 { 0 } else { naive_bytes / runs };
        Ok(Json::obj(vec![
            ("block_bytes", Json::UInt(block_bytes)),
            ("blocks", Json::UInt(blocks.len() as u64)),
            ("bytes_per_run", Json::UInt(bytes_per_run)),
            ("catalog_bytes", Json::UInt(catalog_bytes)),
            ("dedup_ratio_milli", Json::UInt(dedup_ratio_milli)),
            ("entries", Json::UInt(entries.len() as u64)),
            ("naive_bytes", Json::UInt(naive_bytes)),
            ("naive_bytes_per_run", Json::UInt(naive_bytes_per_run)),
            ("runs", Json::UInt(runs)),
            ("store_bytes", Json::UInt(store_bytes)),
            ("tier_lz77", Json::UInt(tier_lz77)),
            ("tier_range", Json::UInt(tier_range)),
            ("tier_stored", Json::UInt(tier_stored)),
            ("total_block_refs", Json::UInt(total_refs)),
        ]))
    }

    /// The observer counters (blocks stored/deduped/compacted,
    /// checkpoint tier hits/misses, byte totals) as canonical JSON —
    /// the "store" section of fleet `stats --fleet`.
    pub fn counters_json(&self) -> Json {
        let mut j = self.lock().metrics.to_json();
        j.canonicalize();
        j
    }

    /// Persist the heat map if it changed. Called on drop; explicit
    /// calls make heat visible to other processes (the CLI between
    /// subcommand invocations).
    pub fn flush(&self) -> Result<(), StoreError> {
        let snapshot = {
            let mut st = self.lock();
            if !st.heat_dirty {
                return Ok(());
            }
            st.heat_dirty = false;
            st.heat.clone()
        };
        let pairs: Vec<(String, Json)> = snapshot
            .iter()
            .map(|(d, &n)| (d.hex(), Json::UInt(n)))
            .collect();
        self.backend
            .write_atomic(&self.backend.heat_path(), Json::Obj(pairs).to_string().as_bytes())
    }

    fn read_entry(&self, id: &str) -> Result<CatalogEntry, StoreError> {
        if Digest128::parse(id).is_none() {
            return Err(StoreError::Corrupt(format!("not a valid entry id: {id:?}")));
        }
        let path = self.backend.catalog_path(id);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound(format!("entry {id}"))
            } else {
                StoreError::io(&path, e)
            }
        })?;
        let json = Json::parse(&text)
            .map_err(|e| StoreError::Corrupt(format!("entry {id}: bad JSON: {e:?}")))?;
        let entry = CatalogEntry::from_json(&json)?;
        if entry.identity() != id {
            return Err(StoreError::Corrupt(format!(
                "entry {id}: file content identifies as {}",
                entry.identity()
            )));
        }
        Ok(entry)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned lock means another thread panicked mid-bookkeeping;
        // the bookkeeping is observer-only, so continue with its state.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.backend.root())
            .finish()
    }
}

fn load_heat(backend: &Backend) -> Result<BTreeMap<Digest128, u64>, StoreError> {
    let path = backend.heat_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(StoreError::io(&path, e)),
    };
    let json =
        Json::parse(&text).map_err(|e| StoreError::Corrupt(format!("heat map: bad JSON: {e:?}")))?;
    let mut heat = BTreeMap::new();
    for (k, v) in json
        .as_obj()
        .map_err(|_| StoreError::Corrupt("heat map: not an object".into()))?
    {
        let digest = Digest128::parse(k)
            .ok_or_else(|| StoreError::Corrupt(format!("heat map: bad digest key {k:?}")))?;
        let n = v
            .as_u64()
            .map_err(|_| StoreError::Corrupt("heat map: non-integer count".into()))?;
        heat.insert(digest, n);
    }
    Ok(heat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu::trace::{DataRec, SwitchRec, Trace};
    use dejavu::encode_trace;

    fn scratch(tag: &str) -> std::path::PathBuf {
        // CARGO_TARGET_TMPDIR is only set for integration tests, so unit
        // tests use the OS temp dir, pid-scoped against parallel runs.
        let dir = std::env::temp_dir().join(format!("djv-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(paranoid: bool, n: usize, salt: u64) -> Trace {
        let mut t = Trace {
            paranoid,
            ..Trace::default()
        };
        for i in 0..n {
            t.switches.push(SwitchRec {
                nyp: 200 + ((i as u64 + salt) % 17),
                check_tid: if paranoid { (i % 3) as u32 } else { u32::MAX },
            });
        }
        for i in 0..n {
            t.data.push(DataRec::Clock(1_000_000 + salt as i64 + 2 * i as i64));
        }
        t
    }

    #[test]
    fn put_get_roundtrip_both_formats() {
        let root = scratch("roundtrip");
        let store = Store::open(&root).unwrap();
        for (i, format) in [TraceFormat::Block, TraceFormat::Flat].iter().enumerate() {
            let t = sample(true, 400, i as u64);
            let bytes = encode_trace(&t, *format, 64);
            let put = store.put_bytes("w", i as u64, &bytes, 0, "").unwrap();
            assert!(put.new_entry);
            assert!(put.blocks_total > 0);
            let back = store.get_bytes(&put.entry).unwrap();
            assert_eq!(back, bytes, "byte-identical reconstruction ({format:?})");
        }
    }

    #[test]
    fn identical_runs_dedup_to_one_copy() {
        let root = scratch("dedup");
        let store = Store::open(&root).unwrap();
        let bytes = encode_trace(&sample(false, 500, 3), TraceFormat::Block, 64);
        let a = store.put_bytes("w", 1, &bytes, 0, "").unwrap();
        let b = store.put_bytes("w", 1, &bytes, 0, "").unwrap();
        assert_eq!(a.entry, b.entry);
        assert!(a.new_entry && !b.new_entry);
        assert_eq!(b.blocks_new, 0, "second put writes no blocks");
        // A different seed under the same workload still shares every
        // block (same trace content), but catalogs separately.
        let c = store.put_bytes("w", 2, &bytes, 0, "").unwrap();
        assert_ne!(c.entry, a.entry);
        assert_eq!(c.blocks_new, 0);
        assert_eq!(store.entries().unwrap().len(), 2);
    }

    #[test]
    fn fingerprint_upgrades_but_never_flips() {
        let root = scratch("fingerprint");
        let store = Store::open(&root).unwrap();
        let bytes = encode_trace(&sample(false, 100, 0), TraceFormat::Block, 32);
        let a = store.put_bytes("w", 1, &bytes, 0, "").unwrap();
        assert_eq!(a.fingerprint, 0);
        let b = store.put_bytes("w", 1, &bytes, 0xabc, "p.json").unwrap();
        assert_eq!(b.entry, a.entry);
        assert_eq!(b.fingerprint, 0xabc);
        let e = store.entry(&a.entry).unwrap();
        assert_eq!(e.fingerprint, 0xabc);
        assert_eq!(e.policy, "p.json");
        // Unverified re-put keeps the verified fingerprint.
        let c = store.put_bytes("w", 1, &bytes, 0, "").unwrap();
        assert_eq!(c.fingerprint, 0xabc);
        // A conflicting verified fingerprint is divergence-class.
        let err = store.put_bytes("w", 1, &bytes, 0xdef, "").unwrap_err();
        assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
        assert_eq!(err.code(), 2);
    }

    #[test]
    fn open_trace_matches_decode_and_counts_cache() {
        let root = scratch("open");
        let store = Store::open(&root).unwrap();
        let t = sample(true, 600, 9);
        let bytes = encode_trace(&t, TraceFormat::Block, 64);
        let put = store.put_bytes("w", 1, &bytes, 0, "").unwrap();
        let first = store.open_trace(&put.entry).unwrap();
        assert_eq!(first.trace, t);
        assert!(!first.boundaries.is_empty());
        let second = store.open_trace(&put.entry).unwrap();
        assert_eq!(second.trace, t);
        let j = store.counters_json();
        let counters = j.field("counters").unwrap();
        let hits = counters.field("store.checkpoint_hits").unwrap().as_u64().unwrap();
        let misses = counters
            .field("store.checkpoint_misses")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(misses, first.boundaries.len() as u64, "first open all misses");
        assert_eq!(hits, first.boundaries.len() as u64, "second open all hits");
    }

    #[test]
    fn gc_and_compact_preserve_bytes_and_are_idempotent() {
        let root = scratch("gc-compact");
        let store = Store::open(&root).unwrap();
        let keep = encode_trace(&sample(false, 400, 1), TraceFormat::Block, 64);
        let dead = encode_trace(&sample(false, 400, 2), TraceFormat::Block, 64);
        let kept = store.put_bytes("w", 1, &keep, 0, "").unwrap();
        let doomed = store.put_bytes("w", 2, &dead, 0, "").unwrap();
        // Remove the doomed entry's catalog file; its unshared blocks
        // become garbage.
        std::fs::remove_file(store.backend.catalog_path(&doomed.entry)).unwrap();
        let gc1 = store.gc().unwrap();
        assert!(gc1.removed_blocks > 0);
        let gc2 = store.gc().unwrap();
        assert_eq!(gc2.removed_blocks, 0, "gc idempotent");
        // Compact everything cold → range tier; bytes still reconstruct.
        let c1 = store.compact(DEFAULT_COLD_THRESHOLD).unwrap();
        assert_eq!(c1.examined, gc1.live_blocks);
        let back = store.get_bytes(&kept.entry).unwrap();
        assert_eq!(back, keep, "compaction preserves reconstruction");
        let c2 = store.compact(DEFAULT_COLD_THRESHOLD).unwrap();
        assert_eq!(c2.migrated, 0, "second compact is a no-op");
        assert_eq!(c2.unchanged, c2.examined);
        // Stats JSON is canonical and carries the dedup ratio.
        let stats = store.disk_stats().unwrap();
        assert_eq!(stats.to_string(), stats.to_canonical_string());
        assert!(stats.field("dedup_ratio_milli").unwrap().as_u64().is_ok());
    }

    #[test]
    fn heat_persists_across_opens() {
        let root = scratch("heat");
        let entry;
        {
            let store = Store::open(&root).unwrap();
            let bytes = encode_trace(&sample(false, 300, 5), TraceFormat::Block, 64);
            entry = store.put_bytes("w", 1, &bytes, 0, "").unwrap().entry;
            store.get_bytes(&entry).unwrap();
            store.get_bytes(&entry).unwrap();
            // Drop flushes heat.
        }
        let store = Store::open(&root).unwrap();
        let st = store.lock();
        assert!(st.heat.values().all(|&n| n == 2), "two reads per block");
        assert!(!st.heat.is_empty());
    }

    #[test]
    fn missing_and_malformed_ids_are_typed() {
        let root = scratch("errors");
        let store = Store::open(&root).unwrap();
        assert!(matches!(
            store.get_bytes(&"0".repeat(32)),
            Err(StoreError::NotFound(_))
        ));
        let err = store.get_bytes("../../etc/passwd").unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        assert_eq!(err.code(), 1);
        assert!(store
            .put_bytes("w", 1, b"not a trace", 0, "")
            .is_err());
    }
}
