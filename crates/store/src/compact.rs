//! Garbage collection and background compaction.
//!
//! **GC** removes block records no catalog entry references (plus
//! leftover temp files from interrupted writes) and prunes dead heat
//! counters. **Compaction** migrates blocks between storage tiers by
//! access heat: cold blocks (fewer than `cold_threshold` client reads)
//! go through the order-1 range coder, hot blocks stay on the cheaper
//! LZ77 tier, and either degrades to `Stored` when compression does not
//! pay. A block already on its target tier is **skipped without a
//! write** — both compressors are deterministic, so the would-be bytes
//! equal the on-disk bytes — which makes a second compaction pass a
//! byte-level no-op (the idempotence verify.sh gates on).
//!
//! Both passes read raw block bytes only through the validating decoder
//! and never touch catalog entries or fingerprints: store maintenance
//! is perturbation-free by construction — replay output is a function
//! of raw block bytes, which tier migration preserves exactly.

use crate::backend::{encode_record, Backend};
use crate::error::StoreError;
use codec::{Digest128, Json};
use dejavu::BlockMethod;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;

/// What one GC pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    pub live_blocks: u64,
    pub removed_blocks: u64,
    pub removed_tmp: u64,
    pub pruned_heat: u64,
    pub freed_bytes: u64,
}

impl GcReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("freed_bytes", Json::UInt(self.freed_bytes)),
            ("live_blocks", Json::UInt(self.live_blocks)),
            ("pruned_heat", Json::UInt(self.pruned_heat)),
            ("removed_blocks", Json::UInt(self.removed_blocks)),
            ("removed_tmp", Json::UInt(self.removed_tmp)),
        ])
    }
}

/// What one compaction pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactReport {
    pub examined: u64,
    /// Blocks rewritten onto a different tier.
    pub migrated: u64,
    pub to_range: u64,
    pub to_lz77: u64,
    pub to_stored: u64,
    /// Blocks already on their target tier (no write issued).
    pub unchanged: u64,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

impl CompactReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bytes_after", Json::UInt(self.bytes_after)),
            ("bytes_before", Json::UInt(self.bytes_before)),
            ("examined", Json::UInt(self.examined)),
            ("migrated", Json::UInt(self.migrated)),
            ("to_lz77", Json::UInt(self.to_lz77)),
            ("to_range", Json::UInt(self.to_range)),
            ("to_stored", Json::UInt(self.to_stored)),
            ("unchanged", Json::UInt(self.unchanged)),
        ])
    }
}

/// Remove unreferenced blocks, stale temp files, and dead heat
/// counters. `referenced` is the union of every catalog entry's digest
/// list; `heat` is pruned in place (the caller persists it).
pub fn gc_pass(
    backend: &Backend,
    referenced: &BTreeSet<Digest128>,
    heat: &mut BTreeMap<Digest128, u64>,
) -> Result<GcReport, StoreError> {
    let mut report = GcReport {
        removed_tmp: backend.sweep_tmp()?,
        ..GcReport::default()
    };
    for (digest, len) in backend.list_blocks()? {
        if referenced.contains(&digest) {
            report.live_blocks += 1;
        } else {
            let path = backend.block_path(digest);
            fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
            report.removed_blocks += 1;
            report.freed_bytes += len;
        }
    }
    let before = heat.len();
    heat.retain(|d, _| referenced.contains(d));
    report.pruned_heat = (before - heat.len()) as u64;
    Ok(report)
}

/// Re-tier every block by heat. Deterministic given (block contents,
/// heat map, threshold); see the module docs for the idempotence
/// argument.
pub fn compact_pass(
    backend: &Backend,
    heat: &BTreeMap<Digest128, u64>,
    cold_threshold: u64,
) -> Result<CompactReport, StoreError> {
    let mut report = CompactReport::default();
    for (digest, len) in backend.list_blocks()? {
        report.examined += 1;
        report.bytes_before += len;
        let (current, raw) = backend.read_block(digest)?;
        let reads = heat.get(&digest).copied().unwrap_or(0);
        let desired = if reads < cold_threshold {
            BlockMethod::Range
        } else {
            BlockMethod::Lz77
        };
        let (bytes, actual) = encode_record(digest, &raw, desired);
        if actual == current {
            report.unchanged += 1;
            report.bytes_after += len;
            continue;
        }
        backend.write_atomic(&backend.block_path(digest), &bytes)?;
        report.migrated += 1;
        report.bytes_after += bytes.len() as u64;
        match actual {
            BlockMethod::Range => report.to_range += 1,
            BlockMethod::Lz77 => report.to_lz77 += 1,
            BlockMethod::Stored => report.to_stored += 1,
        }
    }
    Ok(report)
}
