//! The on-disk backend: block record files, catalog files, and the heat
//! map, all written atomically (unique temp file + rename) so readers —
//! including concurrent fleet sessions and a compactor mid-pass — only
//! ever observe a complete old or complete new file.
//!
//! ## Store layout
//!
//! ```text
//! <root>/blocks/<2-hex-prefix>/<32-hex-digest>.blk   block records
//! <root>/catalog/<32-hex-entry-id>.json              run manifests
//! <root>/meta/heat.json                              access counters
//! ```
//!
//! ## Block record format (`DJSB` v1)
//!
//! ```text
//! "DJSB" ver=1 tier_byte(0=stored 1=lz77 2=range)
//! varint(raw_len) varint(comp_len) varint(crc32 of raw)
//! digest[16]                                (echo of the filename key)
//! payload[comp_len]                         (raw, or the tier's stream)
//! ```
//!
//! A record is self-validating: decode re-derives the raw bytes, checks
//! the CRC, **and recomputes the content digest against the echo** — so
//! even a digest collision or a renamed file surfaces as a typed
//! [`StoreError::Corrupt`], never as silently wrong replay data.

use crate::error::StoreError;
use codec::{digest128, get_varint, put_varint, Digest128};
use dejavu::BlockMethod;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const RECORD_MAGIC: &[u8; 4] = b"DJSB";
const RECORD_VERSION: u8 = 1;
/// Decoder allocation cap, mirroring the DJVB block payload bound.
const MAX_RAW_LEN: u64 = 1 << 26;

/// Process-wide uniquifier for temp-file names (pid alone is not enough
/// with many store threads in one process).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Encode one block record at the given storage tier. The tier degrades
/// to `Stored` when its compressor does not shrink the payload, so the
/// returned tier is what actually landed in the bytes.
pub fn encode_record(digest: Digest128, raw: &[u8], tier: BlockMethod) -> (Vec<u8>, BlockMethod) {
    let (tier, payload) = match tier {
        BlockMethod::Stored => (BlockMethod::Stored, raw.to_vec()),
        BlockMethod::Lz77 => {
            let s = codec::compress(raw);
            if s.len() < raw.len() {
                (BlockMethod::Lz77, s)
            } else {
                (BlockMethod::Stored, raw.to_vec())
            }
        }
        BlockMethod::Range => {
            let s = codec::entropy_compress(raw);
            if s.len() < raw.len() {
                (BlockMethod::Range, s)
            } else {
                (BlockMethod::Stored, raw.to_vec())
            }
        }
    };
    let mut out = Vec::with_capacity(payload.len() + 40);
    out.extend_from_slice(RECORD_MAGIC);
    out.push(RECORD_VERSION);
    out.push(tier.code());
    put_varint(&mut out, raw.len() as u64);
    put_varint(&mut out, payload.len() as u64);
    put_varint(&mut out, codec::crc32(raw) as u64);
    out.extend_from_slice(&digest.0);
    out.extend_from_slice(&payload);
    (out, tier)
}

/// Decode and fully validate one block record: framing, tier, CRC, and
/// the content digest against `expect`.
pub fn decode_record(
    expect: Digest128,
    buf: &[u8],
) -> Result<(BlockMethod, Vec<u8>), StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("block {expect}: {what}"));
    if buf.len() < 6 || &buf[..4] != RECORD_MAGIC {
        return Err(corrupt("bad record magic"));
    }
    if buf[4] != RECORD_VERSION {
        return Err(corrupt("unsupported record version"));
    }
    let tier = BlockMethod::from_code(buf[5]).ok_or_else(|| corrupt("unknown storage tier"))?;
    let mut pos = 6usize;
    let raw_len = get_varint(buf, &mut pos).ok_or_else(|| corrupt("short record header"))?;
    let comp_len = get_varint(buf, &mut pos).ok_or_else(|| corrupt("short record header"))?;
    let crc = get_varint(buf, &mut pos).ok_or_else(|| corrupt("short record header"))?;
    if raw_len > MAX_RAW_LEN || crc > u32::MAX as u64 {
        return Err(corrupt("implausible record header"));
    }
    if tier == BlockMethod::Stored && comp_len != raw_len {
        return Err(corrupt("stored tier with mismatched lengths"));
    }
    if comp_len > raw_len.max(1) {
        return Err(corrupt("compressed payload larger than raw"));
    }
    let echo_end = pos
        .checked_add(16)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("short digest echo"))?;
    let echo = Digest128(buf[pos..echo_end].try_into().unwrap());
    if echo != expect {
        return Err(corrupt("digest echo names a different block"));
    }
    pos = echo_end;
    let end = pos
        .checked_add(comp_len as usize)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("truncated payload"))?;
    if end != buf.len() {
        return Err(corrupt("trailing bytes after payload"));
    }
    let payload = &buf[pos..end];
    let raw = match tier {
        BlockMethod::Stored => payload.to_vec(),
        BlockMethod::Lz77 => codec::decompress(payload, raw_len as usize)
            .ok_or_else(|| corrupt("lz77 payload rejected"))?,
        BlockMethod::Range => codec::entropy_decompress(payload, raw_len as usize)
            .ok_or_else(|| corrupt("range payload rejected"))?,
    };
    if raw.len() as u64 != raw_len {
        return Err(corrupt("payload decodes to the wrong length"));
    }
    if codec::crc32(&raw) as u64 != crc {
        return Err(corrupt("payload CRC mismatch"));
    }
    if digest128(&raw) != expect {
        return Err(corrupt("content does not match its digest"));
    }
    Ok((tier, raw))
}

/// Filesystem operations under one store root.
#[derive(Debug)]
pub struct Backend {
    root: PathBuf,
}

impl Backend {
    /// Open (creating directories as needed).
    pub fn open(root: &Path) -> Result<Backend, StoreError> {
        for sub in ["blocks", "catalog", "meta"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        }
        Ok(Backend {
            root: root.to_path_buf(),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn block_path(&self, digest: Digest128) -> PathBuf {
        let hex = digest.hex();
        self.root.join("blocks").join(&hex[..2]).join(format!("{hex}.blk"))
    }

    pub fn catalog_path(&self, id: &str) -> PathBuf {
        self.root.join("catalog").join(format!("{id}.json"))
    }

    pub fn heat_path(&self) -> PathBuf {
        self.root.join("meta").join("heat.json")
    }

    pub fn has_block(&self, digest: Digest128) -> bool {
        self.block_path(digest).exists()
    }

    /// Atomic write: unique temp file in the target's directory, then
    /// rename over the destination. Concurrent writers of the same path
    /// race benignly — for content-addressed paths both bodies are
    /// byte-identical, and rename is atomic either way.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let dir = path
            .parent()
            .ok_or_else(|| StoreError::Corrupt(format!("{}: no parent dir", path.display())))?;
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let tmp = dir.join(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes).map_err(|e| StoreError::io(&tmp, e))?;
        fs::rename(&tmp, path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::io(path, e)
        })
    }

    /// Write one block record if absent. Returns `(actual_tier,
    /// bytes_written, was_new)` — `bytes_written == 0` on a dedup hit.
    pub fn write_block(
        &self,
        digest: Digest128,
        raw: &[u8],
        tier: BlockMethod,
    ) -> Result<(BlockMethod, u64, bool), StoreError> {
        let path = self.block_path(digest);
        if path.exists() {
            return Ok((tier, 0, false));
        }
        let (bytes, actual) = encode_record(digest, raw, tier);
        self.write_atomic(&path, &bytes)?;
        Ok((actual, bytes.len() as u64, true))
    }

    /// Read + fully validate one block record.
    pub fn read_block(&self, digest: Digest128) -> Result<(BlockMethod, Vec<u8>), StoreError> {
        let path = self.block_path(digest);
        let buf = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound(format!("block {digest}"))
            } else {
                StoreError::io(&path, e)
            }
        })?;
        decode_record(digest, &buf)
    }

    /// Every block digest on disk with its record-file size, sorted by
    /// digest (deterministic iteration order for compaction and stats).
    pub fn list_blocks(&self) -> Result<Vec<(Digest128, u64)>, StoreError> {
        let mut out = Vec::new();
        let blocks = self.root.join("blocks");
        let shards = fs::read_dir(&blocks).map_err(|e| StoreError::io(&blocks, e))?;
        for shard in shards {
            let shard = shard.map_err(|e| StoreError::io(&blocks, e))?.path();
            if !shard.is_dir() {
                continue;
            }
            let entries = fs::read_dir(&shard).map_err(|e| StoreError::io(&shard, e))?;
            for entry in entries {
                let entry = entry.map_err(|e| StoreError::io(&shard, e))?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(stem) = name.strip_suffix(".blk") else {
                    continue;
                };
                let Some(digest) = Digest128::parse(stem) else {
                    continue;
                };
                let len = entry
                    .metadata()
                    .map_err(|e| StoreError::io(&entry.path(), e))?
                    .len();
                out.push((digest, len));
            }
        }
        out.sort_by_key(|&(d, _)| d);
        Ok(out)
    }

    /// Every catalog entry id on disk with its file size, sorted.
    pub fn list_catalog(&self) -> Result<Vec<(String, u64)>, StoreError> {
        let dir = self.root.join("catalog");
        let mut out = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| StoreError::io(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_suffix(".json") else {
                continue;
            };
            if Digest128::parse(stem).is_none() {
                continue;
            }
            let len = entry
                .metadata()
                .map_err(|e| StoreError::io(&entry.path(), e))?
                .len();
            out.push((stem.to_owned(), len));
        }
        out.sort();
        Ok(out)
    }

    /// Delete leftover `tmp-*` files from interrupted writes. Returns
    /// how many were removed.
    pub fn sweep_tmp(&self) -> Result<u64, StoreError> {
        let mut removed = 0;
        let mut dirs: Vec<PathBuf> = vec![self.root.join("catalog"), self.root.join("meta")];
        let blocks = self.root.join("blocks");
        let shards = fs::read_dir(&blocks).map_err(|e| StoreError::io(&blocks, e))?;
        for shard in shards {
            let p = shard.map_err(|e| StoreError::io(&blocks, e))?.path();
            if p.is_dir() {
                dirs.push(p);
            }
        }
        for dir in dirs {
            let entries = fs::read_dir(&dir).map_err(|e| StoreError::io(&dir, e))?;
            for entry in entries {
                let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
                if entry
                    .file_name()
                    .to_string_lossy()
                    .starts_with("tmp-")
                {
                    fs::remove_file(entry.path())
                        .map_err(|e| StoreError::io(&entry.path(), e))?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_all_tiers() {
        // Compressible payload: every tier should survive a round trip
        // and come back with the raw bytes.
        let raw: Vec<u8> = (0..4000u32).map(|i| (i % 7) as u8).collect();
        let digest = digest128(&raw);
        for tier in [BlockMethod::Stored, BlockMethod::Lz77, BlockMethod::Range] {
            let (bytes, actual) = encode_record(digest, &raw, tier);
            let (t2, raw2) = decode_record(digest, &bytes).unwrap();
            assert_eq!(t2, actual);
            assert_eq!(raw2, raw);
        }
    }

    #[test]
    fn record_incompressible_degrades_to_stored() {
        // A short high-entropy payload the compressors cannot shrink.
        let raw: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let digest = digest128(&raw);
        let (_, actual) = encode_record(digest, &raw, BlockMethod::Lz77);
        // Whatever tier landed, decode returns the same raw.
        let (bytes, tier) = encode_record(digest, &raw, actual);
        let (t2, raw2) = decode_record(digest, &bytes).unwrap();
        assert_eq!(t2, tier);
        assert_eq!(raw2, raw);
    }

    #[test]
    fn record_rejects_wrong_digest_and_damage() {
        let raw = b"payload payload payload payload".to_vec();
        let digest = digest128(&raw);
        let (bytes, _) = encode_record(digest, &raw, BlockMethod::Stored);
        // Wrong expected digest: echo check fires.
        let other = digest128(b"other");
        assert!(matches!(
            decode_record(other, &bytes),
            Err(StoreError::Corrupt(_))
        ));
        // Any single-byte truncation is a typed error.
        for cut in 1..bytes.len() {
            assert!(
                decode_record(digest, &bytes[..bytes.len() - cut]).is_err(),
                "accepted a {cut}-byte truncation"
            );
        }
        // Flip the last payload byte: CRC or digest check fires.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_record(digest, &bad).is_err());
    }
}
