//! The trace catalog: one canonical-JSON manifest per stored run. An
//! entry is a *view* over shared blocks — it records the block digest
//! list plus exactly the per-block fields needed to reassemble the
//! original file bytes ([`dejavu::assemble_block_file`]) and to key
//! checkpoints ([`BlockRef::first_logical_time`]).
//!
//! ## Identity
//!
//! An entry's id is the digest of the canonical JSON of its **content
//! identity**: workload, seed, format, paranoid, budget, and the block
//! digest list. Fingerprint and policy are deliberately excluded — a
//! fleet ingest (fingerprint unknown at ingest time) and a CLI `store
//! put --verify` of the same run must converge on one entry, with the
//! fingerprint upgrading in place. Two *verified* puts that disagree on
//! the fingerprint are a divergence
//! ([`StoreError::FingerprintMismatch`], exit class 2), caught at put
//! time, not at replay time.

use crate::error::StoreError;
use codec::{digest128, Digest128, Json};
use dejavu::BlockMethod;

/// One block reference inside a catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRef {
    pub digest: Digest128,
    pub event_count: u32,
    pub switch_count: u32,
    /// Cumulative logical clock before the block — the checkpoint key.
    pub first_logical_time: u64,
    /// The compressor that won at original encode time (reconstruction
    /// re-runs exactly this one).
    pub method: BlockMethod,
    pub raw_len: u32,
}

/// One stored run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    pub workload: String,
    pub seed: u64,
    /// `"block"` or `"flat"` — the format of the originally put file.
    pub format: String,
    pub paranoid: bool,
    /// Block budget of the stored blocks (for flat sources, the budget
    /// the store blockified them at).
    pub budget: u32,
    /// Length of the originally put file — `get` validates its
    /// reconstruction against this.
    pub file_bytes: u64,
    /// Replay fingerprint; 0 = not yet verified.
    pub fingerprint: u64,
    /// Optional pointer to a replay policy sidecar ("" = none).
    pub policy: String,
    /// How many times this run has been put (repeated puts of the same
    /// run converge on one entry; this counts them, so "naive bytes" =
    /// `file_bytes × puts` reflects what per-run files would have cost).
    pub puts: u64,
    pub blocks: Vec<BlockRef>,
}

impl CatalogEntry {
    /// Content identity (the catalog filename). Excludes fingerprint
    /// and policy — see the module docs.
    pub fn identity(&self) -> String {
        let blocks = Json::Arr(
            self.blocks
                .iter()
                .map(|b| Json::Str(b.digest.hex()))
                .collect(),
        );
        let id_obj = Json::obj(vec![
            ("blocks", blocks),
            ("budget", Json::UInt(self.budget as u64)),
            ("format", Json::Str(self.format.clone())),
            ("paranoid", Json::Bool(self.paranoid)),
            ("seed", Json::UInt(self.seed)),
            ("workload", Json::Str(self.workload.clone())),
        ]);
        digest128(id_obj.to_canonical_string().as_bytes()).hex()
    }

    /// Canonical JSON body (keys pre-sorted, so `to_string` ==
    /// `to_canonical_string`). The `id` field is included for
    /// self-description and re-validated on parse.
    pub fn to_json(&self) -> Json {
        let blocks = Json::Arr(
            self.blocks
                .iter()
                .map(|b| {
                    Json::obj(vec![
                        ("digest", Json::Str(b.digest.hex())),
                        ("event_count", Json::UInt(b.event_count as u64)),
                        ("first_logical_time", Json::UInt(b.first_logical_time)),
                        ("method", Json::UInt(b.method.code() as u64)),
                        ("raw_len", Json::UInt(b.raw_len as u64)),
                        ("switch_count", Json::UInt(b.switch_count as u64)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("blocks", blocks),
            ("budget", Json::UInt(self.budget as u64)),
            ("file_bytes", Json::UInt(self.file_bytes)),
            ("fingerprint", Json::UInt(self.fingerprint)),
            ("format", Json::Str(self.format.clone())),
            ("id", Json::Str(self.identity())),
            ("paranoid", Json::Bool(self.paranoid)),
            ("policy", Json::Str(self.policy.clone())),
            ("puts", Json::UInt(self.puts)),
            ("seed", Json::UInt(self.seed)),
            ("workload", Json::Str(self.workload.clone())),
        ])
    }

    /// Strict parse + identity re-validation: a catalog file whose `id`
    /// field disagrees with its recomputed identity (bit rot, a renamed
    /// file, hand edits) is typed corruption.
    pub fn from_json(j: &Json) -> Result<CatalogEntry, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt(format!("catalog entry: {what}"));
        let field_u64 = |key: &str| -> Result<u64, StoreError> {
            j.field(key)
                .and_then(|v| v.as_u64())
                .map_err(|_| corrupt(&format!("missing/invalid field {key:?}")))
        };
        let field_str = |key: &str| -> Result<String, StoreError> {
            j.field(key)
                .and_then(|v| v.as_str())
                .map(|s| s.to_owned())
                .map_err(|_| corrupt(&format!("missing/invalid field {key:?}")))
        };
        let format = field_str("format")?;
        if format != "block" && format != "flat" {
            return Err(corrupt("unknown format"));
        }
        let budget = field_u64("budget")?;
        if budget == 0 || budget > u32::MAX as u64 {
            return Err(corrupt("bad budget"));
        }
        let paranoid = j
            .field("paranoid")
            .and_then(|v| v.as_bool())
            .map_err(|_| corrupt("missing/invalid field \"paranoid\""))?;
        let blocks_json = j
            .field("blocks")
            .and_then(|v| v.as_arr())
            .map_err(|_| corrupt("missing/invalid field \"blocks\""))?;
        let mut blocks = Vec::with_capacity(blocks_json.len());
        let mut prev_logical = 0u64;
        for b in blocks_json {
            let bfield = |key: &str| -> Result<u64, StoreError> {
                b.field(key)
                    .and_then(|v| v.as_u64())
                    .map_err(|_| corrupt(&format!("block ref: missing/invalid {key:?}")))
            };
            let digest = b
                .field("digest")
                .and_then(|v| v.as_str())
                .ok()
                .and_then(Digest128::parse)
                .ok_or_else(|| corrupt("block ref: bad digest"))?;
            let event_count = bfield("event_count")?;
            let switch_count = bfield("switch_count")?;
            if switch_count > event_count || event_count > u32::MAX as u64 {
                return Err(corrupt("block ref: implausible event counts"));
            }
            let first_logical_time = bfield("first_logical_time")?;
            if first_logical_time < prev_logical {
                return Err(corrupt("block ref: logical time not monotone"));
            }
            prev_logical = first_logical_time;
            let method = BlockMethod::from_code(
                u8::try_from(bfield("method")?)
                    .map_err(|_| corrupt("block ref: bad method"))?,
            )
            .ok_or_else(|| corrupt("block ref: bad method"))?;
            let raw_len = bfield("raw_len")?;
            if raw_len > u32::MAX as u64 {
                return Err(corrupt("block ref: implausible raw_len"));
            }
            blocks.push(BlockRef {
                digest,
                event_count: event_count as u32,
                switch_count: switch_count as u32,
                first_logical_time,
                method,
                raw_len: raw_len as u32,
            });
        }
        let puts = field_u64("puts")?;
        if puts == 0 {
            return Err(corrupt("zero puts"));
        }
        let entry = CatalogEntry {
            workload: field_str("workload")?,
            seed: field_u64("seed")?,
            format,
            paranoid,
            budget: budget as u32,
            file_bytes: field_u64("file_bytes")?,
            fingerprint: field_u64("fingerprint")?,
            policy: field_str("policy")?,
            puts,
            blocks,
        };
        let claimed = field_str("id")?;
        if claimed != entry.identity() {
            return Err(corrupt("id disagrees with recomputed identity"));
        }
        Ok(entry)
    }

    /// Checkpoint boundaries for the time-travel layer — one per block,
    /// same contract as [`dejavu::BlockFile::boundaries`].
    pub fn boundaries(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.first_logical_time).collect()
    }

    pub fn event_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.event_count as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CatalogEntry {
        CatalogEntry {
            workload: "fig1_ab".into(),
            seed: 7,
            format: "block".into(),
            paranoid: true,
            budget: 4096,
            file_bytes: 12345,
            fingerprint: 0xdead_beef,
            policy: "".into(),
            puts: 1,
            blocks: vec![
                BlockRef {
                    digest: digest128(b"block zero"),
                    event_count: 4096,
                    switch_count: 2048,
                    first_logical_time: 0,
                    method: BlockMethod::Range,
                    raw_len: 9000,
                },
                BlockRef {
                    digest: digest128(b"block one"),
                    event_count: 100,
                    switch_count: 0,
                    first_logical_time: 411_000,
                    method: BlockMethod::Stored,
                    raw_len: 64,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_canonical() {
        let e = sample_entry();
        let j = e.to_json();
        assert_eq!(j.to_string(), j.to_canonical_string(), "keys pre-sorted");
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(CatalogEntry::from_json(&parsed).unwrap(), e);
    }

    #[test]
    fn identity_excludes_fingerprint_and_policy() {
        let a = sample_entry();
        let mut b = a.clone();
        b.fingerprint = 0;
        b.policy = "some/policy.json".into();
        b.puts = 64;
        assert_eq!(a.identity(), b.identity());
        let mut c = a.clone();
        c.seed = 8;
        assert_ne!(a.identity(), c.identity());
        let mut d = a.clone();
        d.blocks[0].digest = digest128(b"different");
        assert_ne!(a.identity(), d.identity());
    }

    #[test]
    fn tampered_id_is_corrupt() {
        let e = sample_entry();
        let mut text = e.to_json().to_string();
        // Change the seed without re-deriving the id.
        text = text.replace("\"seed\":7", "\"seed\":8");
        let parsed = Json::parse(&text).unwrap();
        assert!(matches!(
            CatalogEntry::from_json(&parsed),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn nonmonotone_boundaries_are_corrupt() {
        let mut e = sample_entry();
        e.blocks[1].first_logical_time = 0;
        e.blocks[0].first_logical_time = 5;
        let parsed = Json::parse(&e.to_json().to_string()).unwrap();
        assert!(CatalogEntry::from_json(&parsed).is_err());
    }
}
