//! # debugger — the DejaVu-based perturbation-free debugger (paper §3-§4)
//!
//! Architecture (the paper's Figure 4, three tiers):
//!
//! ```text
//!  application VM ──(replayed deterministically by DejaVu)
//!        ▲
//!        │ remote reflection (word reads only — never executes app code)
//!  debugger tier: [`engine::DebugSession`] — breakpoints, step,
//!        │         reverse-step (checkpoints), stack/thread views
//!        │ TCP, JSON-line protocol ([`protocol`]), small packets
//!  GUI tier: [`client::DebugClient`] (CLI stand-in for the Swing GUI)
//! ```
//!
//! Because the application runs under DejaVu replay and every query goes
//! through remote reflection, debugging is *perturbation-free*: stop,
//! inspect, resume — the execution remains exactly the recorded one.

pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

pub use client::DebugClient;
pub use engine::{DebugSession, FrameInfo, StopReason, ThreadInfo};
pub use protocol::{Command, Response};
