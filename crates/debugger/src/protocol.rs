//! The tool↔GUI wire protocol (paper §4).
//!
//! The GUI "is designed to run on yet a third JVM, communicating with the
//! debugger JVM through TCP. (Bandwidth is minimized by transmitting small
//! packets of data rather than large images.)" Our protocol is JSON lines:
//! one request and one response object per line, each a small structured
//! packet. Serialization is hand-rolled over the workspace's own
//! [`codec::json`] layer (hermetic build — no serde):
//!
//! * a [`Command`] is `{"cmd": "<snake_case name>", ...fields}`,
//! * a [`Response`] is `{"resp": "<snake_case name>", ...fields}`,
//! * a [`StopReason`] is externally tagged: a bare string for unit
//!   variants (`"step_done"`), `{"breakpoint": {...}}` for the rest.

use crate::engine::{FrameInfo, StopReason, ThreadInfo};
use codec::{FromJson, Json, JsonError, ToJson};

/// Requests the client (GUI tier) sends.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Set a breakpoint at (method id, pc).
    Break {
        method: u32,
        pc: u32,
    },
    /// Set a breakpoint by method name + source line.
    BreakLine {
        method: String,
        line: u32,
    },
    ClearBreak {
        method: u32,
        pc: u32,
    },
    Continue,
    Step,
    StepBack,
    Seek {
        step: u64,
    },
    /// Seek to an absolute logical time (counted yield points); a
    /// block-trace session resolves it through the block index.
    SeekTime {
        time: u64,
    },
    Stack {
        tid: u32,
    },
    Threads,
    Inspect {
        addr: u64,
    },
    Disassemble {
        method: u32,
    },
    Output,
    Where,
    /// Fetch the session's metrics snapshot (counters, telemetry ring,
    /// histograms, time-travel accounting) as canonical JSON.
    Metrics,
    /// Fetch the divergence forensics for the replay so far.
    Divergence,
    /// Profile the session's trace: replay it to completion with the
    /// flight recorder armed and return the top-`top` hot methods plus
    /// phase/QOp attribution as canonical JSON.
    Profile {
        top: u64,
    },
    Quit,
}

/// Responses the debugger tier returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Ok,
    Stopped {
        reason: StopReason,
        step: u64,
    },
    Stack {
        frames: Vec<FrameInfo>,
    },
    Threads {
        threads: Vec<ThreadInfo>,
    },
    Object {
        description: String,
    },
    Listing {
        text: String,
    },
    Output {
        text: String,
    },
    Location {
        method: String,
        pc: u32,
        line: i64,
        step: u64,
    },
    /// What a `seek_time` actually did: where it restored from and how
    /// much trace it had to replay (the O(block) evidence).
    SeekStats {
        target_logical: u64,
        restored: bool,
        checkpoint_step: u64,
        checkpoint_logical: u64,
        steps_replayed: u64,
        events_replayed: u64,
        final_step: u64,
        final_logical: u64,
    },
    /// Canonical-JSON metrics snapshot, transported as a string so the
    /// packet stays byte-deterministic end to end.
    Metrics {
        json: String,
    },
    /// Replay-divergence forensics: `clean` iff no desync was flagged,
    /// each desync rendered human-readably, plus the canonical JSON array.
    Divergence {
        clean: bool,
        desyncs: Vec<String>,
        json: String,
    },
    /// Canonical-JSON profile summary (top-N hot methods, phase table,
    /// QOp cycle attribution, fingerprint), transported as a string like
    /// `Metrics` so the packet stays byte-deterministic end to end.
    Profile {
        json: String,
    },
    Error {
        message: String,
    },
    Bye,
}

/// `{"<tag>": "<name>", ...fields}`.
fn tagged(tag: &str, name: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![(tag, Json::Str(name.into()))];
    pairs.extend(fields);
    Json::obj(pairs)
}

impl ToJson for Command {
    fn to_json(&self) -> Json {
        match self {
            Command::Break { method, pc } => tagged(
                "cmd",
                "break",
                vec![("method", method.to_json()), ("pc", pc.to_json())],
            ),
            Command::BreakLine { method, line } => tagged(
                "cmd",
                "break_line",
                vec![("method", method.to_json()), ("line", line.to_json())],
            ),
            Command::ClearBreak { method, pc } => tagged(
                "cmd",
                "clear_break",
                vec![("method", method.to_json()), ("pc", pc.to_json())],
            ),
            Command::Continue => tagged("cmd", "continue", vec![]),
            Command::Step => tagged("cmd", "step", vec![]),
            Command::StepBack => tagged("cmd", "step_back", vec![]),
            Command::Seek { step } => tagged("cmd", "seek", vec![("step", step.to_json())]),
            Command::SeekTime { time } => {
                tagged("cmd", "seek_time", vec![("time", time.to_json())])
            }
            Command::Stack { tid } => tagged("cmd", "stack", vec![("tid", tid.to_json())]),
            Command::Threads => tagged("cmd", "threads", vec![]),
            Command::Inspect { addr } => tagged("cmd", "inspect", vec![("addr", addr.to_json())]),
            Command::Disassemble { method } => {
                tagged("cmd", "disassemble", vec![("method", method.to_json())])
            }
            Command::Output => tagged("cmd", "output", vec![]),
            Command::Where => tagged("cmd", "where", vec![]),
            Command::Metrics => tagged("cmd", "metrics", vec![]),
            Command::Divergence => tagged("cmd", "divergence", vec![]),
            Command::Profile { top } => tagged("cmd", "profile", vec![("top", top.to_json())]),
            Command::Quit => tagged("cmd", "quit", vec![]),
        }
    }
}

impl FromJson for Command {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let cmd = match j.field("cmd")?.as_str()? {
            "break" => Command::Break {
                method: u32::from_json(j.field("method")?)?,
                pc: u32::from_json(j.field("pc")?)?,
            },
            "break_line" => Command::BreakLine {
                method: String::from_json(j.field("method")?)?,
                line: u32::from_json(j.field("line")?)?,
            },
            "clear_break" => Command::ClearBreak {
                method: u32::from_json(j.field("method")?)?,
                pc: u32::from_json(j.field("pc")?)?,
            },
            "continue" => Command::Continue,
            "step" => Command::Step,
            "step_back" => Command::StepBack,
            "seek" => Command::Seek {
                step: u64::from_json(j.field("step")?)?,
            },
            "seek_time" => Command::SeekTime {
                time: u64::from_json(j.field("time")?)?,
            },
            "stack" => Command::Stack {
                tid: u32::from_json(j.field("tid")?)?,
            },
            "threads" => Command::Threads,
            "inspect" => Command::Inspect {
                addr: u64::from_json(j.field("addr")?)?,
            },
            "disassemble" => Command::Disassemble {
                method: u32::from_json(j.field("method")?)?,
            },
            "output" => Command::Output,
            "where" => Command::Where,
            "metrics" => Command::Metrics,
            "divergence" => Command::Divergence,
            "profile" => Command::Profile {
                top: u64::from_json(j.field("top")?)?,
            },
            "quit" => Command::Quit,
            other => return Err(JsonError::new(format!("unknown command \"{other}\""))),
        };
        Ok(cmd)
    }
}

impl ToJson for StopReason {
    fn to_json(&self) -> Json {
        match self {
            StopReason::Breakpoint { method, pc, tid } => Json::obj(vec![(
                "breakpoint",
                Json::obj(vec![
                    ("method", method.to_json()),
                    ("pc", pc.to_json()),
                    ("tid", tid.to_json()),
                ]),
            )]),
            StopReason::StepDone => Json::Str("step_done".into()),
            StopReason::Halted => Json::Str("halted".into()),
            StopReason::Deadlocked => Json::Str("deadlocked".into()),
            StopReason::Error(msg) => Json::obj(vec![("error", msg.to_json())]),
        }
    }
}

impl FromJson for StopReason {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Ok(name) = j.as_str() {
            return match name {
                "step_done" => Ok(StopReason::StepDone),
                "halted" => Ok(StopReason::Halted),
                "deadlocked" => Ok(StopReason::Deadlocked),
                other => Err(JsonError::new(format!("unknown stop reason \"{other}\""))),
            };
        }
        if let Some(bp) = j.get("breakpoint") {
            return Ok(StopReason::Breakpoint {
                method: u32::from_json(bp.field("method")?)?,
                pc: u32::from_json(bp.field("pc")?)?,
                tid: u32::from_json(bp.field("tid")?)?,
            });
        }
        if let Some(msg) = j.get("error") {
            return Ok(StopReason::Error(String::from_json(msg)?));
        }
        Err(JsonError::new("unrecognized stop reason"))
    }
}

impl ToJson for FrameInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("method", self.method.to_json()),
            ("method_name", self.method_name.to_json()),
            ("pc", self.pc.to_json()),
            ("line", self.line.to_json()),
            ("op", self.op.to_json()),
        ])
    }
}

impl FromJson for FrameInfo {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(FrameInfo {
            method: u32::from_json(j.field("method")?)?,
            method_name: String::from_json(j.field("method_name")?)?,
            pc: u32::from_json(j.field("pc")?)?,
            line: i64::from_json(j.field("line")?)?,
            op: String::from_json(j.field("op")?)?,
        })
    }
}

impl ToJson for ThreadInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tid", self.tid.to_json()),
            ("name", self.name.to_json()),
            ("status", self.status.to_json()),
            ("method_name", self.method_name.to_json()),
            ("pc", self.pc.to_json()),
            ("yield_points", self.yield_points.to_json()),
        ])
    }
}

impl FromJson for ThreadInfo {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ThreadInfo {
            tid: u32::from_json(j.field("tid")?)?,
            name: String::from_json(j.field("name")?)?,
            status: String::from_json(j.field("status")?)?,
            method_name: String::from_json(j.field("method_name")?)?,
            pc: u32::from_json(j.field("pc")?)?,
            yield_points: u64::from_json(j.field("yield_points")?)?,
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Ok => tagged("resp", "ok", vec![]),
            Response::Stopped { reason, step } => tagged(
                "resp",
                "stopped",
                vec![("reason", reason.to_json()), ("step", step.to_json())],
            ),
            Response::Stack { frames } => {
                tagged("resp", "stack", vec![("frames", frames.to_json())])
            }
            Response::Threads { threads } => {
                tagged("resp", "threads", vec![("threads", threads.to_json())])
            }
            Response::Object { description } => tagged(
                "resp",
                "object",
                vec![("description", description.to_json())],
            ),
            Response::Listing { text } => tagged("resp", "listing", vec![("text", text.to_json())]),
            Response::Output { text } => tagged("resp", "output", vec![("text", text.to_json())]),
            Response::Location {
                method,
                pc,
                line,
                step,
            } => tagged(
                "resp",
                "location",
                vec![
                    ("method", method.to_json()),
                    ("pc", pc.to_json()),
                    ("line", line.to_json()),
                    ("step", step.to_json()),
                ],
            ),
            Response::SeekStats {
                target_logical,
                restored,
                checkpoint_step,
                checkpoint_logical,
                steps_replayed,
                events_replayed,
                final_step,
                final_logical,
            } => tagged(
                "resp",
                "seek_stats",
                vec![
                    ("target_logical", target_logical.to_json()),
                    ("restored", restored.to_json()),
                    ("checkpoint_step", checkpoint_step.to_json()),
                    ("checkpoint_logical", checkpoint_logical.to_json()),
                    ("steps_replayed", steps_replayed.to_json()),
                    ("events_replayed", events_replayed.to_json()),
                    ("final_step", final_step.to_json()),
                    ("final_logical", final_logical.to_json()),
                ],
            ),
            Response::Metrics { json } => tagged("resp", "metrics", vec![("json", json.to_json())]),
            Response::Divergence {
                clean,
                desyncs,
                json,
            } => tagged(
                "resp",
                "divergence",
                vec![
                    ("clean", clean.to_json()),
                    ("desyncs", desyncs.to_json()),
                    ("json", json.to_json()),
                ],
            ),
            Response::Profile { json } => tagged("resp", "profile", vec![("json", json.to_json())]),
            Response::Error { message } => {
                tagged("resp", "error", vec![("message", message.to_json())])
            }
            Response::Bye => tagged("resp", "bye", vec![]),
        }
    }
}

impl FromJson for Response {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let resp = match j.field("resp")?.as_str()? {
            "ok" => Response::Ok,
            "stopped" => Response::Stopped {
                reason: StopReason::from_json(j.field("reason")?)?,
                step: u64::from_json(j.field("step")?)?,
            },
            "stack" => Response::Stack {
                frames: Vec::from_json(j.field("frames")?)?,
            },
            "threads" => Response::Threads {
                threads: Vec::from_json(j.field("threads")?)?,
            },
            "object" => Response::Object {
                description: String::from_json(j.field("description")?)?,
            },
            "listing" => Response::Listing {
                text: String::from_json(j.field("text")?)?,
            },
            "output" => Response::Output {
                text: String::from_json(j.field("text")?)?,
            },
            "location" => Response::Location {
                method: String::from_json(j.field("method")?)?,
                pc: u32::from_json(j.field("pc")?)?,
                line: i64::from_json(j.field("line")?)?,
                step: u64::from_json(j.field("step")?)?,
            },
            "seek_stats" => Response::SeekStats {
                target_logical: u64::from_json(j.field("target_logical")?)?,
                restored: bool::from_json(j.field("restored")?)?,
                checkpoint_step: u64::from_json(j.field("checkpoint_step")?)?,
                checkpoint_logical: u64::from_json(j.field("checkpoint_logical")?)?,
                steps_replayed: u64::from_json(j.field("steps_replayed")?)?,
                events_replayed: u64::from_json(j.field("events_replayed")?)?,
                final_step: u64::from_json(j.field("final_step")?)?,
                final_logical: u64::from_json(j.field("final_logical")?)?,
            },
            "metrics" => Response::Metrics {
                json: String::from_json(j.field("json")?)?,
            },
            "divergence" => Response::Divergence {
                clean: bool::from_json(j.field("clean")?)?,
                desyncs: Vec::from_json(j.field("desyncs")?)?,
                json: String::from_json(j.field("json")?)?,
            },
            "profile" => Response::Profile {
                json: String::from_json(j.field("json")?)?,
            },
            "error" => Response::Error {
                message: String::from_json(j.field("message")?)?,
            },
            "bye" => Response::Bye,
            other => return Err(JsonError::new(format!("unknown response \"{other}\""))),
        };
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `Command` variant, payload edges included.
    pub(crate) fn all_commands() -> Vec<Command> {
        vec![
            Command::Break { method: 3, pc: 7 },
            Command::BreakLine {
                method: "Main.run \"quoted\"\n".into(),
                line: 5,
            },
            Command::ClearBreak {
                method: u32::MAX,
                pc: 0,
            },
            Command::Continue,
            Command::Step,
            Command::StepBack,
            Command::Seek { step: u64::MAX },
            Command::SeekTime { time: u64::MAX },
            Command::Stack { tid: 2 },
            Command::Threads,
            Command::Inspect { addr: u64::MAX },
            Command::Disassemble { method: 0 },
            Command::Output,
            Command::Where,
            Command::Metrics,
            Command::Divergence,
            Command::Profile { top: 10 },
            Command::Profile { top: u64::MAX },
            Command::Quit,
        ]
    }

    /// Every `Response` variant, including every `StopReason`.
    pub(crate) fn all_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Stopped {
                reason: StopReason::Breakpoint {
                    method: 1,
                    pc: 2,
                    tid: 3,
                },
                step: 0,
            },
            Response::Stopped {
                reason: StopReason::StepDone,
                step: 1,
            },
            Response::Stopped {
                reason: StopReason::Halted,
                step: 10,
            },
            Response::Stopped {
                reason: StopReason::Deadlocked,
                step: u64::MAX,
            },
            Response::Stopped {
                reason: StopReason::Error("thread 1: DivByZero".into()),
                step: 99,
            },
            Response::Stack {
                frames: vec![FrameInfo {
                    method: 4,
                    method_name: "Worker.run".into(),
                    pc: 12,
                    line: -1,
                    op: "GetField { idx: 0, ty: Int }".into(),
                }],
            },
            Response::Stack { frames: vec![] },
            Response::Threads {
                threads: vec![ThreadInfo {
                    tid: 0,
                    name: "main".into(),
                    status: "blocked(monitor@128)".into(),
                    method_name: "main".into(),
                    pc: 3,
                    yield_points: 1 << 40,
                }],
            },
            Response::Object {
                description: "Node@64 {v: 41, next: null}".into(),
            },
            Response::Listing {
                text: "  0: Const(1)\n* 1: Goto(0)\n".into(),
            },
            Response::Output {
                text: "déjà vu\n".into(),
            },
            Response::Location {
                method: "Main.main".into(),
                pc: 9,
                line: 42,
                step: 1234,
            },
            Response::SeekStats {
                target_logical: 1 << 33,
                restored: true,
                checkpoint_step: 4_000,
                checkpoint_logical: 512,
                steps_replayed: 977,
                events_replayed: 13,
                final_step: 4_977,
                final_logical: 1 << 33,
            },
            Response::SeekStats {
                target_logical: 0,
                restored: false,
                checkpoint_step: 0,
                checkpoint_logical: 0,
                steps_replayed: 0,
                events_replayed: 0,
                final_step: 0,
                final_logical: 0,
            },
            Response::Metrics {
                json: r#"{"counters":{"clock_reads":3}}"#.into(),
            },
            Response::Divergence {
                clean: true,
                desyncs: vec![],
                json: "[]".into(),
            },
            Response::Divergence {
                clean: false,
                desyncs: vec![
                    "ClockStream { reads_so_far: 2 }".into(),
                    "SwitchTidMismatch { switch_index: 0, recorded: 1, observed: 2 }".into(),
                ],
                json: r#"[{"kind":"clock_stream","reads_so_far":2}]"#.into(),
            },
            Response::Profile {
                json: r#"{"hot_methods":[{"calls":1,"cycles_excl":9,"cycles_incl":9,"method":0,"name":"main"}],"total_cycles":9}"#.into(),
            },
            Response::Error {
                message: "no such location".into(),
            },
            Response::Bye,
        ]
    }

    #[test]
    fn commands_roundtrip_json() {
        for c in all_commands() {
            let s = c.to_json_string();
            let back = Command::from_json_str(&s).unwrap();
            assert_eq!(back, c, "wire form: {s}");
        }
    }

    #[test]
    fn responses_roundtrip_json() {
        for r in all_responses() {
            let s = r.to_json_string();
            let back = Response::from_json_str(&s).unwrap();
            assert_eq!(back, r, "wire form: {s}");
        }
    }

    #[test]
    fn wire_shape_is_tagged_snake_case() {
        assert_eq!(
            Command::Break { method: 3, pc: 7 }.to_json_string(),
            r#"{"cmd":"break","method":3,"pc":7}"#
        );
        assert_eq!(
            Response::Stopped {
                reason: StopReason::StepDone,
                step: 5
            }
            .to_json_string(),
            r#"{"resp":"stopped","reason":"step_done","step":5}"#
        );
    }

    #[test]
    fn wire_form_is_one_line() {
        for r in all_responses() {
            assert!(
                !r.to_json_string().contains('\n'),
                "line-delimited protocol"
            );
        }
        for c in all_commands() {
            assert!(!c.to_json_string().contains('\n'));
        }
    }

    #[test]
    fn garbage_rejected_not_panicking() {
        for bad in [
            "",
            "{}",
            "{\"cmd\":\"no_such\"}",
            "{\"cmd\":\"break\"}",
            "{\"resp\":\"stopped\",\"reason\":\"bogus\",\"step\":1}",
            "{\"cmd\":\"seek\",\"step\":-1}",
            "{\"cmd\":\"profile\"}",
            "[1,2,3]",
        ] {
            assert!(Command::from_json_str(bad).is_err(), "accepted {bad:?}");
            assert!(Response::from_json_str(bad).is_err(), "accepted {bad:?}");
        }
    }
}
