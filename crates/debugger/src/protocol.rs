//! The tool↔GUI wire protocol (paper §4).
//!
//! The GUI "is designed to run on yet a third JVM, communicating with the
//! debugger JVM through TCP. (Bandwidth is minimized by transmitting small
//! packets of data rather than large images.)" Our protocol is JSON lines:
//! one request and one response object per line, each a small structured
//! packet.

use crate::engine::{FrameInfo, StopReason, ThreadInfo};
use serde::{Deserialize, Serialize};

/// Requests the client (GUI tier) sends.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "snake_case")]
pub enum Command {
    /// Set a breakpoint at (method id, pc).
    Break { method: u32, pc: u32 },
    /// Set a breakpoint by method name + source line.
    BreakLine { method: String, line: u32 },
    ClearBreak { method: u32, pc: u32 },
    Continue,
    Step,
    StepBack,
    Seek { step: u64 },
    Stack { tid: u32 },
    Threads,
    Inspect { addr: u64 },
    Disassemble { method: u32 },
    Output,
    Where,
    Quit,
}

/// Responses the debugger tier returns.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "resp", rename_all = "snake_case")]
pub enum Response {
    Ok,
    Stopped { reason: StopReason, step: u64 },
    Stack { frames: Vec<FrameInfo> },
    Threads { threads: Vec<ThreadInfo> },
    Object { description: String },
    Listing { text: String },
    Output { text: String },
    Location { method: String, pc: u32, line: i64, step: u64 },
    Error { message: String },
    Bye,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_roundtrip_json() {
        let cmds = vec![
            Command::Break { method: 3, pc: 7 },
            Command::BreakLine {
                method: "main".into(),
                line: 5,
            },
            Command::Continue,
            Command::StepBack,
            Command::Seek { step: 1234 },
            Command::Inspect { addr: 99 },
            Command::Quit,
        ];
        for c in cmds {
            let s = serde_json::to_string(&c).unwrap();
            let back: Command = serde_json::from_str(&s).unwrap();
            assert_eq!(format!("{c:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn responses_roundtrip_json() {
        let rs = vec![
            Response::Ok,
            Response::Stopped {
                reason: StopReason::Halted,
                step: 10,
            },
            Response::Error {
                message: "nope".into(),
            },
            Response::Bye,
        ];
        for r in rs {
            let s = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&s).unwrap();
            assert_eq!(format!("{r:?}"), format!("{back:?}"));
        }
    }
}
