//! The debugger tier: hosts a [`DebugSession`] and serves the JSON-line
//! protocol over TCP to the GUI tier (paper Fig. 4's three-process split,
//! with our CLI client standing in for the Swing GUI).

use crate::engine::DebugSession;
use crate::protocol::{Command, Response};
use codec::{FromJson, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

/// Serve one client connection, then return the session.
pub fn serve_one(
    mut session: DebugSession,
    listener: TcpListener,
) -> std::io::Result<DebugSession> {
    let (conn, _) = listener.accept()?;
    serve_lines(conn, |cmd| handle(&mut session, cmd))?;
    Ok(session)
}

/// Run the JSON-line request/response loop on one connection, dispatching
/// each parsed [`Command`] through `dispatch`. Returns `Ok(true)` iff the
/// client sent [`Command::Quit`]; `Ok(false)` means the peer closed the
/// connection. A dropped peer surfaces as a typed `io::Error`, never a
/// panic — the fleet tier's JSON-line compatibility adapter reuses this
/// loop verbatim so the single-session and multi-session servers cannot
/// drift.
pub fn serve_lines(
    conn: TcpStream,
    mut dispatch: impl FnMut(Command) -> Response,
) -> std::io::Result<bool> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut conn = conn;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(false);
        }
        let cmd: Command = match Command::from_json_str(line.trim()) {
            Ok(c) => c,
            Err(e) => {
                send(
                    &mut conn,
                    &Response::Error {
                        message: format!("bad command: {e}"),
                    },
                )?;
                continue;
            }
        };
        let quit = matches!(cmd, Command::Quit);
        let resp = dispatch(cmd);
        send(&mut conn, &resp)?;
        if quit {
            return Ok(true);
        }
    }
}

fn send(conn: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut s = resp.to_json_string();
    s.push('\n');
    conn.write_all(s.as_bytes())
}

/// Execute one command against the session.
pub fn handle(session: &mut DebugSession, cmd: Command) -> Response {
    match cmd {
        Command::Break { method, pc } => {
            session.add_breakpoint(method, pc);
            Response::Ok
        }
        Command::BreakLine { method, line } => match session.resolve_line(&method, line) {
            Some((m, pc)) => {
                session.add_breakpoint(m, pc);
                Response::Ok
            }
            None => Response::Error {
                message: format!("no such location {method}:{line}"),
            },
        },
        Command::ClearBreak { method, pc } => {
            session.remove_breakpoint(method, pc);
            Response::Ok
        }
        Command::Continue => {
            let reason = session.cont();
            Response::Stopped {
                reason,
                step: session.step_index(),
            }
        }
        Command::Step => {
            let reason = session.step();
            Response::Stopped {
                reason,
                step: session.step_index(),
            }
        }
        Command::StepBack => {
            let reason = session.step_back();
            Response::Stopped {
                reason,
                step: session.step_index(),
            }
        }
        Command::Seek { step } => {
            session.seek(step);
            Response::Stopped {
                reason: crate::engine::StopReason::StepDone,
                step: session.step_index(),
            }
        }
        Command::SeekTime { time } => {
            let st = session.seek_time(time);
            Response::SeekStats {
                target_logical: st.target_logical,
                restored: st.restored,
                checkpoint_step: st.checkpoint_step,
                checkpoint_logical: st.checkpoint_logical,
                steps_replayed: st.steps_replayed,
                events_replayed: st.events_replayed,
                final_step: st.final_step,
                final_logical: st.final_logical,
            }
        }
        Command::Stack { tid } => Response::Stack {
            frames: session.stack_trace(tid),
        },
        Command::Threads => Response::Threads {
            threads: session.threads(),
        },
        Command::Inspect { addr } => Response::Object {
            description: session.inspect(addr),
        },
        Command::Disassemble { method } => Response::Listing {
            text: session.disassemble(method),
        },
        Command::Output => Response::Output {
            text: session.output(),
        },
        Command::Where => {
            let vm = session.vm();
            let t = vm.current_thread();
            let (method, pc) = (t.method, t.pc);
            let name = session
                .program()
                .method(method)
                .qualified_name(session.program());
            let frames = session.stack_trace(vm.sched.current);
            let line = frames.first().map(|f| f.line).unwrap_or(-1);
            Response::Location {
                method: name,
                pc,
                line,
                step: session.step_index(),
            }
        }
        Command::Metrics => Response::Metrics {
            json: session.metrics_json(),
        },
        Command::Profile { top } => match session.profile_json(top) {
            Ok(json) => Response::Profile { json },
            Err(message) => Response::Error { message },
        },
        Command::Divergence => {
            let desyncs: Vec<String> = session.desyncs().iter().map(|d| d.describe()).collect();
            Response::Divergence {
                clean: desyncs.is_empty(),
                desyncs,
                json: session.divergence_json(),
            }
        }
        Command::Quit => Response::Bye,
    }
}
