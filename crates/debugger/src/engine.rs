//! The debugger engine (paper §3-§4).
//!
//! The session drives a **replaying** application VM (so execution is the
//! recorded one, exactly), supports breakpoints, single-stepping, and —
//! thanks to checkpoints — *reverse* stepping. All inspection goes through
//! **remote reflection** against the paused VM's address space: "the
//! execution must not be perturbed by normal debugger operations such as
//! stopping and continuing, querying objects and program states, setting
//! breakpoints."

use baselines::{SeekStats, TimeTravel};
use dejavu::{SymmetryConfig, Trace, TraceError};
use djvm::heap::Addr;
use djvm::thread::ThreadStatus;
use djvm::{CycleClock, FixedTimer, MethodId, Program, Tid, Vm, VmConfig, VmStatus};
use reflect::{mirror, LocalVmMemory, RemoteReflector};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Why the session stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    Breakpoint { method: u32, pc: u32, tid: u32 },
    StepDone,
    Halted,
    Deadlocked,
    Error(String),
}

/// One frame of a stack trace, resolved via remote reflection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    pub method: u32,
    pub method_name: String,
    pub pc: u32,
    /// Source line, obtained by the Figure-3 reflective query against the
    /// application VM's address space.
    pub line: i64,
    pub op: String,
}

/// Thread-viewer row (paper §4: "A thread viewer is useful for finding
/// subtle bugs in multithreaded applications").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    pub tid: u32,
    pub name: String,
    pub status: String,
    pub method_name: String,
    pub pc: u32,
    pub yield_points: u64,
}

/// A perturbation-free debug session over a recorded execution.
pub struct DebugSession {
    tt: TimeTravel,
    program: Arc<Program>,
    breakpoints: BTreeSet<(MethodId, u32)>,
    /// The loaded trace, retained for whole-run analyses (profiling) that
    /// replay it in a scratch VM without disturbing the session's own
    /// time-travel position.
    trace: Trace,
    vm_config: VmConfig,
}

impl DebugSession {
    /// Start a session replaying `trace` of `program` (checkpoints every
    /// `checkpoint_interval` steps enable reverse execution).
    pub fn new(
        program: Arc<Program>,
        vm_config: VmConfig,
        trace: Trace,
        checkpoint_interval: u64,
    ) -> Self {
        Self::new_indexed(program, vm_config, trace, checkpoint_interval, Vec::new())
    }

    /// Like [`DebugSession::new`], additionally checkpointing at the given
    /// logical-time boundaries (a block trace's footer index), which makes
    /// [`DebugSession::seek_time`] O(block) instead of O(run).
    pub fn new_indexed(
        program: Arc<Program>,
        vm_config: VmConfig,
        trace: Trace,
        checkpoint_interval: u64,
        boundaries: Vec<u64>,
    ) -> Self {
        let mut vm = Vm::boot(
            Arc::clone(&program),
            vm_config.clone(),
            Box::new(FixedTimer::new(1 << 30)), // replay ignores the timer
            Box::new(CycleClock::new(0, 100)),  // and never reads the clock
        )
        .expect("boot");
        // The debugged VM always carries the observer-only telemetry sink:
        // the `Metrics`/`Divergence` protocol commands read it, and since
        // it lives outside the guest state it cannot perturb the replay.
        vm.enable_telemetry(telemetry::DEFAULT_RING_CAP);
        let tt = TimeTravel::new_indexed(
            vm,
            trace.clone(),
            SymmetryConfig::full(),
            checkpoint_interval,
            boundaries,
        );
        Self {
            tt,
            program,
            breakpoints: BTreeSet::new(),
            trace,
            vm_config,
        }
    }

    /// Start a session from serialized trace bytes in either on-disk
    /// format, via the session-safe [`dejavu::ingest_bytes`] path shared
    /// with the fleet tier's streaming upload. A block trace's footer
    /// index becomes the checkpoint keying; a flat trace degrades to
    /// interval-only checkpoints. Corrupt bytes produce a typed
    /// [`TraceError`], never a panic.
    pub fn from_trace_bytes(
        program: Arc<Program>,
        vm_config: VmConfig,
        bytes: &[u8],
        checkpoint_interval: u64,
    ) -> Result<Self, TraceError> {
        let ingested = dejavu::ingest_bytes(bytes.to_vec())?;
        Ok(Self::new_indexed(
            program,
            vm_config,
            ingested.trace,
            checkpoint_interval,
            ingested.boundaries,
        ))
    }

    pub fn vm(&self) -> &Vm {
        &self.tt.vm()
    }

    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    pub fn step_index(&self) -> u64 {
        self.tt.step
    }

    pub fn add_breakpoint(&mut self, method: MethodId, pc: u32) {
        self.breakpoints.insert((method, pc));
    }

    pub fn remove_breakpoint(&mut self, method: MethodId, pc: u32) {
        self.breakpoints.remove(&(method, pc));
    }

    pub fn breakpoints(&self) -> Vec<(MethodId, u32)> {
        self.breakpoints.iter().copied().collect()
    }

    /// Find a breakpoint location by method name + source line.
    pub fn resolve_line(&self, method_name: &str, line: u32) -> Option<(MethodId, u32)> {
        let mid = self.program.method_id_by_name(method_name)?;
        let pc = self
            .program
            .method(mid)
            .lines
            .iter()
            .position(|&l| l == line)? as u32;
        Some((mid, pc))
    }

    fn status_reason(&self) -> Option<StopReason> {
        match self.vm().status {
            VmStatus::Running => None,
            VmStatus::Halted => Some(StopReason::Halted),
            VmStatus::Deadlocked => Some(StopReason::Deadlocked),
            VmStatus::Error(e) => Some(StopReason::Error(e.to_string())),
        }
    }

    fn at_breakpoint(&self) -> Option<StopReason> {
        let vm = self.vm();
        let t = vm.current_thread();
        if self.breakpoints.contains(&(t.method, t.pc)) {
            Some(StopReason::Breakpoint {
                method: t.method,
                pc: t.pc,
                tid: t.tid,
            })
        } else {
            None
        }
    }

    /// Continue until a breakpoint (checked before each instruction) or
    /// termination.
    pub fn cont(&mut self) -> StopReason {
        // Always make at least one step of progress so `cont` at a
        // breakpoint moves past it.
        if let Some(r) = self.status_reason() {
            return r;
        }
        self.tt.step_once();
        loop {
            if let Some(r) = self.status_reason() {
                return r;
            }
            if let Some(r) = self.at_breakpoint() {
                return r;
            }
            self.tt.step_once();
        }
    }

    /// Execute exactly one instruction.
    pub fn step(&mut self) -> StopReason {
        if let Some(r) = self.status_reason() {
            return r;
        }
        self.tt.step_once();
        self.status_reason()
            .or_else(|| self.at_breakpoint())
            .unwrap_or(StopReason::StepDone)
    }

    /// Step *backwards* one instruction (checkpoint restore + forward
    /// replay — the Igor/Boothe "reverse execution" on top of DejaVu).
    pub fn step_back(&mut self) -> StopReason {
        let target = self.tt.step.saturating_sub(1);
        self.tt.seek(target);
        StopReason::StepDone
    }

    /// Travel to an absolute step index.
    pub fn seek(&mut self, step: u64) {
        self.tt.seek(step);
    }

    /// Travel to an absolute logical time (counted yield points), the
    /// block-index seek path. Returns what the seek cost.
    pub fn seek_time(&mut self, logical: u64) -> SeekStats {
        self.tt.seek_logical(logical)
    }

    /// Current logical time of the replayed VM.
    pub fn logical_time(&self) -> u64 {
        self.tt.logical_time()
    }

    /// Stack trace of a thread, lines resolved by remote reflection.
    pub fn stack_trace(&mut self, tid: Tid) -> Vec<FrameInfo> {
        let frames = self.vm().frames(tid);
        let vm = self.tt.vm();
        let mem = LocalVmMemory::new(vm);
        let mut refl = RemoteReflector::new(Arc::clone(&self.program), &mem);
        refl.map_boot_method_table(vm.boot_image.method_table);
        frames
            .iter()
            .map(|f| {
                let line = refl.line_number_of(f.method, f.pc).unwrap_or(-1);
                let m = self.program.method(f.method);
                FrameInfo {
                    method: f.method,
                    method_name: m.qualified_name(&self.program),
                    pc: f.pc,
                    line,
                    op: format!("{:?}", m.ops[f.pc as usize]),
                }
            })
            .collect()
    }

    /// The thread viewer.
    pub fn threads(&self) -> Vec<ThreadInfo> {
        self.vm()
            .threads
            .iter()
            .map(|t| ThreadInfo {
                tid: t.tid,
                name: t.name.clone(),
                status: match t.status {
                    ThreadStatus::Ready => "ready".into(),
                    ThreadStatus::Running => "running".into(),
                    ThreadStatus::BlockedMonitor(a) => format!("blocked(monitor@{a})"),
                    ThreadStatus::Waiting(a) => format!("waiting(monitor@{a})"),
                    ThreadStatus::TimedWaiting(a) => format!("timed-waiting(monitor@{a})"),
                    ThreadStatus::Sleeping => "sleeping".into(),
                    ThreadStatus::JoinWaiting(x) => format!("joining(t{x})"),
                    ThreadStatus::Terminated => "terminated".into(),
                },
                method_name: self.program.method(t.method).qualified_name(&self.program),
                pc: t.pc,
                yield_points: t.yield_points,
            })
            .collect()
    }

    /// Inspect an object via remote reflection mirrors.
    pub fn inspect(&self, addr: Addr) -> String {
        let mem = LocalVmMemory::new(self.vm());
        mirror::describe(&mem, &self.program, addr)
    }

    /// Console output so far.
    pub fn output(&self) -> String {
        self.vm().output.clone()
    }

    /// Instruction listing of a method (paper §4: the machine-instruction
    /// view), with yield points marked and source lines inline.
    pub fn disassemble(&self, method: MethodId) -> String {
        djvm::dis::disassemble(&self.program, method)
    }

    /// Canonical-JSON metrics snapshot: the replayed VM's event counters,
    /// its telemetry sink (event ring + histograms), and the session's own
    /// time-travel accounting. Purely observational — reading it executes
    /// nothing and perturbs nothing.
    pub fn metrics_json(&self) -> String {
        use codec::Json;
        let mut session = telemetry::Registry::new();
        session.add("breakpoints", self.breakpoints.len() as u64);
        session.add("checkpoint_bytes", self.tt.storage_bytes() as u64);
        session.add("checkpoints", self.tt.checkpoints.len() as u64);
        session.add("reexecuted_steps", self.tt.reexecuted);
        session.add("restores", self.tt.restores);
        session.add("step", self.tt.step);
        let vm = self.tt.vm();
        let mut j = Json::obj(vec![
            ("counters", dejavu::counters_json(&vm.counters)),
            ("cycles", Json::UInt(vm.cycles)),
            ("ring", vm.telem.ring.to_json()),
            ("session", session.to_json()),
            (
                "histograms",
                Json::obj(vec![
                    ("alloc_words", vm.telem.alloc_words.to_json()),
                    ("compile_words", vm.telem.compile_words.to_json()),
                    ("timer_intervals", vm.telem.timer_intervals.to_json()),
                ]),
            ),
        ]);
        j.canonicalize();
        j.to_string()
    }

    /// Desyncs the replayer has flagged so far (empty while the replay is
    /// accurate).
    pub fn desyncs(&self) -> &[dejavu::Desync] {
        self.tt.desyncs()
    }

    /// Canonical-JSON array of the flagged desyncs.
    pub fn divergence_json(&self) -> String {
        use codec::Json;
        let mut j = Json::Arr(self.desyncs().iter().map(|d| d.to_json()).collect());
        j.canonicalize();
        j.to_string()
    }

    /// Canonical-JSON profile summary (top-`top` hot methods, phase table,
    /// QOp attribution) of the *whole* recorded run.
    ///
    /// Profiling wants cycle attribution over the full execution, so this
    /// replays the loaded trace start-to-finish in a scratch VM with the
    /// flight recorder armed — the session's own time-travel position,
    /// checkpoints, and breakpoints are untouched, and the profiler is a
    /// pure observer, so the scratch replay's fingerprint equals the
    /// debugged one's. Errors (instead of panicking) when the session has
    /// no trace loaded.
    pub fn profile_json(&self, top: u64) -> Result<String, String> {
        if self.trace.switches.is_empty() && self.trace.data.is_empty() {
            return Err("no trace loaded: profiling needs a recorded run".into());
        }
        let mut vm = Vm::boot(
            Arc::clone(&self.program),
            self.vm_config.clone(),
            Box::new(FixedTimer::new(1 << 30)),
            Box::new(CycleClock::new(0, 100)),
        )
        .map_err(|e| format!("profile replay boot failed: {e:?}"))?;
        vm.enable_telemetry(telemetry::DEFAULT_RING_CAP);
        vm.enable_profiler();
        let mut hook = dejavu::DejaVuReplayer::new(self.trace.clone(), SymmetryConfig::full());
        hook.on_init_public(&mut vm);
        djvm::interp::run(&mut vm, &mut hook, u64::MAX);
        let profiler = vm
            .telem
            .profile
            .take()
            .ok_or_else(|| "profiler produced no log".to_string())?;
        let report = dejavu::RunReport {
            status: vm.status,
            output: vm.output.clone(),
            fingerprint: vm.fingerprint.digest(),
            state_digest: vm.state_digest(),
            counters: vm.counters,
            gc_collections: vm.heap.stats.collections,
            cycles: vm.cycles,
            wall_time: std::time::Duration::ZERO,
            telemetry: None,
            profile: Some(profiler),
            mega: vm.mega.stats,
        };
        let prof =
            dejavu::ProfileReport::from_run(&report, &self.program).expect("profile log present");
        Ok(prof.summary_json(top as usize).to_string())
    }
}
