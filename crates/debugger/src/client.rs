//! The GUI-tier client (paper §4): a thin typed wrapper over the JSON-line
//! protocol, suitable for a CLI front end or tests. Runs in its own
//! process, talking to the debugger tier over TCP.

use crate::protocol::{Command, Response};
use codec::{FromJson, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected debugger client.
pub struct DebugClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl DebugClient {
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Send a command and await its response. A peer that hangs up before
    /// answering yields a typed `UnexpectedEof` error rather than a bogus
    /// parse failure on an empty line.
    pub fn request(&mut self, cmd: &Command) -> std::io::Result<Response> {
        let mut s = cmd.to_json_string();
        s.push('\n');
        self.stream.write_all(s.as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "debugger server closed the connection mid-request",
            ));
        }
        Response::from_json_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    pub fn brk(&mut self, method: u32, pc: u32) -> std::io::Result<Response> {
        self.request(&Command::Break { method, pc })
    }

    pub fn cont(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Continue)
    }

    pub fn step(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Step)
    }

    pub fn step_back(&mut self) -> std::io::Result<Response> {
        self.request(&Command::StepBack)
    }

    pub fn seek_time(&mut self, time: u64) -> std::io::Result<Response> {
        self.request(&Command::SeekTime { time })
    }

    pub fn stack(&mut self, tid: u32) -> std::io::Result<Response> {
        self.request(&Command::Stack { tid })
    }

    pub fn threads(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Threads)
    }

    pub fn output(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Output)
    }

    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Metrics)
    }

    pub fn profile(&mut self, top: u64) -> std::io::Result<Response> {
        self.request(&Command::Profile { top })
    }

    pub fn divergence(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Divergence)
    }

    pub fn quit(&mut self) -> std::io::Result<Response> {
        self.request(&Command::Quit)
    }
}
