//! E9: the debugger — breakpoints, stepping, reverse execution, stack and
//! thread views, and the 3-tier TCP split — all perturbation-free.

use debugger::{Command, DebugClient, DebugSession, Response, StopReason};
use dejavu::{record_run, ExecSpec, SymmetryConfig};
use djvm::{Program, VmStatus};
use std::sync::Arc;

fn recorded(name: &str, seed: u64) -> (Arc<Program>, djvm::VmConfig, dejavu::Trace, String) {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap();
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 53;
    s.timer_jitter = 19;
    let (rec, trace) = record_run(&s, w.natives, SymmetryConfig::full(), true);
    (s.program, s.vm, trace, rec.output)
}

fn session(name: &str, seed: u64) -> (DebugSession, String) {
    let (program, vmc, trace, output) = recorded(name, seed);
    (DebugSession::new(program, vmc, trace, 5_000), output)
}

#[test]
fn breakpoint_hits_and_resume_is_accurate() {
    let (mut s, rec_output) = session("racy_counter", 3);
    let worker = s.program().method_id_by_name("worker").unwrap();
    s.add_breakpoint(worker, 0);
    let stop = s.cont();
    assert!(
        matches!(stop, StopReason::Breakpoint { method, pc: 0, .. } if method == worker),
        "{stop:?}"
    );
    // Inspect at the stop: stack trace resolves lines via remote reflection.
    let tid = s.vm().sched.current;
    let frames = s.stack_trace(tid);
    assert_eq!(frames[0].method_name, "worker");
    // Resume all the way: the replay (despite debugging) matches the record.
    s.remove_breakpoint(worker, 0);
    let stop = s.cont();
    assert_eq!(stop, StopReason::Halted);
    assert_eq!(s.output(), rec_output, "debugging must not perturb replay");
}

#[test]
fn single_step_and_where() {
    let (mut s, _) = session("racy_counter", 4);
    for _ in 0..10 {
        let r = s.step();
        assert_eq!(r, StopReason::StepDone);
    }
    assert_eq!(s.step_index(), 10);
}

#[test]
fn reverse_step_returns_to_identical_state() {
    let (mut s, _) = session("racy_counter", 5);
    for _ in 0..5_000 {
        s.step();
    }
    let digest = s.vm().state_digest();
    let here = s.step_index();
    // forward a bit, then step back to exactly here
    for _ in 0..400 {
        s.step();
    }
    s.seek(here);
    assert_eq!(s.step_index(), here);
    assert_eq!(s.vm().state_digest(), digest, "reverse execution is exact");
    // single reverse step
    s.step_back();
    assert_eq!(s.step_index(), here - 1);
}

#[test]
fn thread_viewer_shows_states() {
    let (mut s, _) = session("producer_consumer", 2);
    for _ in 0..4_000 {
        s.step();
    }
    let threads = s.threads();
    assert!(threads.len() >= 3, "main + producer + consumer");
    assert!(threads.iter().any(|t| t.status == "running"));
    // every thread resolves a method name
    assert!(threads.iter().all(|t| !t.method_name.is_empty()));
}

#[test]
fn inspect_objects_via_remote_reflection() {
    let (mut s, _) = session("gc_churn", 1);
    for _ in 0..3_000 {
        s.step();
    }
    let tobj = s.vm().threads[0].thread_obj;
    let desc = s.inspect(tobj);
    assert!(desc.contains("Thread"), "{desc}");
}

#[test]
fn breakpoints_by_source_line() {
    let (mut s, _) = session("fig1_ab", 7);
    // fig1_ab's main sets y = 1 at line 4.
    let loc = s.resolve_line("main", 4).expect("line 4 exists");
    s.add_breakpoint(loc.0, loc.1);
    let stop = s.cont();
    assert!(matches!(stop, StopReason::Breakpoint { .. }), "{stop:?}");
    let frames = s.stack_trace(s.vm().sched.current);
    assert_eq!(frames[0].line, 4, "stopped at source line 4");
}

#[test]
fn e9_three_tier_tcp_session() {
    let (program, vmc, trace, rec_output) = recorded("racy_counter", 9);
    let worker = program.method_id_by_name("worker").unwrap();
    let session = DebugSession::new(program, vmc, trace, 5_000);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || debugger::server::serve_one(session, listener).unwrap());

    let mut client = DebugClient::connect(&addr.to_string()).unwrap();
    assert!(matches!(client.brk(worker, 0).unwrap(), Response::Ok));
    let r = client.cont().unwrap();
    assert!(
        matches!(
            r,
            Response::Stopped {
                reason: StopReason::Breakpoint { .. },
                ..
            }
        ),
        "{r:?}"
    );
    // stack over the wire
    let Response::Threads { threads } = client.threads().unwrap() else {
        panic!("expected threads");
    };
    let running = threads.iter().find(|t| t.status == "running").unwrap();
    let Response::Stack { frames } = client.stack(running.tid).unwrap() else {
        panic!("expected stack");
    };
    assert_eq!(frames[0].method_name, "worker");
    // step back over the wire
    let r = client.step().unwrap();
    assert!(matches!(r, Response::Stopped { .. }));
    let r = client.step_back().unwrap();
    assert!(matches!(r, Response::Stopped { .. }));
    // clear and run to completion
    assert!(matches!(
        client
            .request(&Command::ClearBreak {
                method: worker,
                pc: 0
            })
            .unwrap(),
        Response::Ok
    ));
    let r = client.cont().unwrap();
    assert!(
        matches!(
            r,
            Response::Stopped {
                reason: StopReason::Halted,
                ..
            }
        ),
        "{r:?}"
    );
    let Response::Output { text } = client.output().unwrap() else {
        panic!("expected output");
    };
    assert_eq!(
        text, rec_output,
        "replayed-through-debugger output matches record"
    );
    client.quit().unwrap();
    let final_session = server.join().unwrap();
    assert_eq!(final_session.vm().status, VmStatus::Halted);
}

#[test]
fn metrics_and_divergence_over_the_wire() {
    let (program, vmc, trace, rec_output) = recorded("racy_counter", 11);
    let session = DebugSession::new(program, vmc, trace, 5_000);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || debugger::server::serve_one(session, listener).unwrap());

    let mut client = DebugClient::connect(&addr.to_string()).unwrap();
    // Advance a little, then read metrics mid-replay.
    for _ in 0..50 {
        client.step().unwrap();
    }
    let Response::Metrics { json } = client.metrics().unwrap() else {
        panic!("expected metrics");
    };
    let parsed = codec::Json::parse(&json).expect("metrics is valid JSON");
    assert_eq!(
        parsed
            .field("session")
            .unwrap()
            .field("counters")
            .unwrap()
            .field("step")
            .unwrap()
            .as_u64()
            .unwrap(),
        50,
        "session step counter in the snapshot"
    );
    assert!(parsed.get("counters").is_some() && parsed.get("ring").is_some());
    // Reading metrics twice in a paused state is byte-identical.
    let Response::Metrics { json: json2 } = client.metrics().unwrap() else {
        panic!("expected metrics");
    };
    assert_eq!(json, json2, "metrics reads are deterministic");

    // An accurate replay reports a clean divergence state.
    let Response::Divergence {
        clean,
        desyncs,
        json,
    } = client.divergence().unwrap()
    else {
        panic!("expected divergence");
    };
    assert!(clean && desyncs.is_empty());
    assert_eq!(json, "[]");

    // Metrics reads must not have perturbed the replay.
    let r = client.cont().unwrap();
    assert!(
        matches!(
            r,
            Response::Stopped {
                reason: StopReason::Halted,
                ..
            }
        ),
        "{r:?}"
    );
    let Response::Output { text } = client.output().unwrap() else {
        panic!("expected output");
    };
    assert_eq!(text, rec_output, "metrics queries must not perturb replay");
    let Response::Divergence { clean, .. } = client.divergence().unwrap() else {
        panic!("expected divergence");
    };
    assert!(clean, "accurate replay stays clean to the end");
    client.quit().unwrap();
    server.join().unwrap();
}

#[test]
fn profile_over_the_wire_and_no_trace_error() {
    let (program, vmc, trace, rec_output) = recorded("fig1_ab", 5);
    let session = DebugSession::new(Arc::clone(&program), vmc.clone(), trace, 5_000);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || debugger::server::serve_one(session, listener).unwrap());

    let mut client = DebugClient::connect(&addr.to_string()).unwrap();
    // Profile before stepping at all: the command replays the whole run in
    // a scratch VM, so it works from any session position.
    let Response::Profile { json } = client.profile(5).unwrap() else {
        panic!("expected profile");
    };
    let parsed = codec::Json::parse(&json).expect("profile is valid JSON");
    let hot = parsed.field("hot_methods").unwrap();
    let codec::Json::Arr(hot) = hot else {
        panic!("hot_methods is an array")
    };
    assert!(!hot.is_empty() && hot.len() <= 5, "top-5 hot methods");
    assert!(parsed.get("fingerprint").is_some() && parsed.get("phases").is_some());
    // Profile reads are byte-deterministic.
    let Response::Profile { json: json2 } = client.profile(5).unwrap() else {
        panic!("expected profile");
    };
    assert_eq!(json, json2, "profile reads are deterministic");
    // …and must not perturb the session's own replay.
    let r = client.cont().unwrap();
    assert!(
        matches!(
            r,
            Response::Stopped {
                reason: StopReason::Halted,
                ..
            }
        ),
        "{r:?}"
    );
    let Response::Output { text } = client.output().unwrap() else {
        panic!("expected output");
    };
    assert_eq!(text, rec_output, "profiling must not perturb the replay");
    client.quit().unwrap();
    server.join().unwrap();

    // Error path: a session with no trace loaded reports a protocol error
    // instead of profiling garbage (or panicking).
    let empty = dejavu::Trace {
        paranoid: true,
        switches: Vec::new(),
        data: Vec::new(),
    };
    let session = DebugSession::new(program, vmc, empty, 5_000);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || debugger::server::serve_one(session, listener).unwrap());
    let mut client = DebugClient::connect(&addr.to_string()).unwrap();
    let Response::Error { message } = client.profile(5).unwrap() else {
        panic!("expected error for profile with no trace");
    };
    assert!(message.contains("no trace loaded"), "{message}");
    // The error leaves the session usable: metrics still answers.
    assert!(matches!(
        client.metrics().unwrap(),
        Response::Metrics { .. }
    ));
    client.quit().unwrap();
    server.join().unwrap();
}

#[test]
fn seek_time_replays_only_the_target_block_span() {
    let (program, vmc, trace, _) = recorded("racy_counter", 6);
    let budget = 64u32;
    let bytes = dejavu::encode_trace(&trace, dejavu::TraceFormat::Block, budget);
    let bf = dejavu::BlockFile::parse(bytes.clone()).expect("own encoding parses");
    let boundaries = bf.boundaries();
    assert!(
        boundaries.len() > 3,
        "want a multi-block trace, got {}",
        boundaries.len()
    );

    // Interval checkpoints off: block boundaries are the only keys, so
    // the measured replay span is attributable to the index alone.
    let mut indexed =
        DebugSession::from_trace_bytes(Arc::clone(&program), vmc.clone(), &bytes, u64::MAX)
            .expect("block bytes accepted");
    assert_eq!(indexed.cont(), StopReason::Halted);
    let end = indexed.logical_time();
    let target = end / 2;

    let stats = indexed.seek_time(target);
    assert!(stats.restored, "backward seek must restore a checkpoint");
    assert_eq!(stats.target_logical, target);
    assert!(
        stats.final_logical >= target,
        "seek lands at or past the target"
    );
    // The restored checkpoint is the *nearest* block boundary ≤ target…
    let want = boundaries[boundaries.partition_point(|&b| b <= target) - 1];
    assert_eq!(
        stats.checkpoint_logical, want,
        "checkpoint keyed to the covering block"
    );
    // …and the forward replay stayed within that block's event span.
    assert!(
        stats.events_replayed <= budget as u64 + 2,
        "replayed {} events for a {budget}-event block span",
        stats.events_replayed
    );

    // The same seek on a flat-format session (single step-0 checkpoint)
    // replays the whole prefix — the block index is what makes the seek
    // O(block) instead of O(run).
    let flat = dejavu::encode_trace(&trace, dejavu::TraceFormat::Flat, budget);
    let mut full =
        DebugSession::from_trace_bytes(program, vmc, &flat, u64::MAX).expect("flat bytes accepted");
    assert_eq!(full.cont(), StopReason::Halted);
    let full_stats = full.seek_time(target);
    assert_eq!(
        full_stats.checkpoint_logical, 0,
        "flat session restores step 0"
    );
    assert!(
        full_stats.events_replayed > stats.events_replayed * 4,
        "full replay {} events vs indexed {}",
        full_stats.events_replayed,
        stats.events_replayed
    );
    assert_eq!(
        full.vm().state_digest(),
        indexed.vm().state_digest(),
        "both routes land on the identical program state"
    );

    // Seeking forward to where we already are replays nothing.
    let noop = indexed.seek_time(indexed.logical_time());
    assert!(!noop.restored);
    assert_eq!(noop.events_replayed, 0);
}

#[test]
fn seek_time_over_the_wire() {
    let (program, vmc, trace, _) = recorded("racy_counter", 13);
    let bytes = dejavu::encode_trace(&trace, dejavu::TraceFormat::Block, 64);
    let session = DebugSession::from_trace_bytes(program, vmc, &bytes, 5_000).unwrap();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || debugger::server::serve_one(session, listener).unwrap());

    let mut client = DebugClient::connect(&addr.to_string()).unwrap();
    let r = client.cont().unwrap();
    assert!(
        matches!(
            r,
            Response::Stopped {
                reason: StopReason::Halted,
                ..
            }
        ),
        "{r:?}"
    );
    let Response::SeekStats {
        target_logical,
        restored,
        checkpoint_logical,
        events_replayed,
        final_logical,
        ..
    } = client.seek_time(40).unwrap()
    else {
        panic!("expected seek_stats");
    };
    assert_eq!(target_logical, 40);
    assert!(restored, "halted session seeks backward via a checkpoint");
    assert!(checkpoint_logical <= 40);
    assert!(final_logical >= 40);
    assert!(events_replayed > 0);
    client.quit().unwrap();
    server.join().unwrap();
}
