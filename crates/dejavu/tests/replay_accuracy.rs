//! Record/replay accuracy on non-deterministic multithreaded guests — the
//! headline property of the paper (§2): with full symmetry, replay
//! reproduces the recorded execution exactly (event sequence, program
//! states, output); across seeds, executions genuinely differ.

use dejavu::{passthrough_run, record_replay, record_run, replay_run, ExecSpec, SymmetryConfig};
use djvm::{GcKind, NativeOutcome, Program, ProgramBuilder, Ty};

/// Two threads race unsynchronized increments on a shared static; the
/// final value depends on preemption timing.
fn racy_counter(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("count", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        // Racy read-modify-write. The inner delay loop puts yield points
        // (backedges) inside the window, so a preemptive switch can land
        // between the read and the write — the lost-update race of Fig. 1.
        a.get_static(g, 0).store(1);
        a.iconst(0).store(0 + 1 + 1); // local 2: delay counter
        a.label("delay");
        a.load(2).iconst(3).ge().if_nz("delay_done");
        a.load(2).iconst(1).add().store(2);
        a.goto("delay");
        a.label("delay_done");
        a.load(1).iconst(1).add().put_static(g, 0);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Producer/consumer over a bounded buffer with wait/notify, plus clock
/// reads and sleeps — every flavour of non-determinism at once.
fn producer_consumer() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("buf", Ty::Ref)
        .static_field("count", Ty::Int)
        .static_field("sum", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let producer = pb.method("producer", 0, 1).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(20).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.label("full");
        a.get_static(g, 2).iconst(4).lt().if_nz("put");
        a.get_static(g, 0).wait().pop();
        a.goto("full");
        a.label("put");
        a.get_static(g, 1).get_static(g, 2).load(0).astore();
        a.get_static(g, 2).iconst(1).add().put_static(g, 2);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        // jitter the producer with a tiny sleep every few items
        a.load(0).iconst(7).rem().if_nz("top");
        a.iconst(2).sleep().pop();
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let consumer = pb.method("consumer", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(20).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.label("empty");
        a.get_static(g, 2).iconst(0).gt().if_nz("take");
        a.get_static(g, 0).wait().pop();
        a.goto("empty");
        a.label("take");
        a.get_static(g, 2).iconst(1).sub().put_static(g, 2);
        a.get_static(g, 1).get_static(g, 2).aload().store(1);
        a.get_static(g, 4 - 1).load(1).add().put_static(g, 3);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(4).new_array_int().put_static(g, 1);
        a.iconst(0).put_static(g, 2);
        a.iconst(0).put_static(g, 3);
        a.spawn(producer, 0).store(0);
        a.spawn(consumer, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 3).print();
        a.now().iconst(0).mul().print(); // clock read (value masked)
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Figure 1 (C)/(D): a wall-clock value steers a branch that decides
/// whether a wait/notify switch happens.
fn clock_branch() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("y", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let t2 = pb.method("t2", 0, 0).code(|a| {
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 1).iconst(100).add().put_static(g, 1);
        a.get_static(g, 0).notify();
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.now().iconst(16).rem().put_static(g, 1); // y = Date() % 16
        a.spawn(t2, 0).store(0);
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 1).iconst(8).lt().if_z("no_wait");
        a.get_static(g, 0).wait().pop();
        a.label("no_wait");
        a.get_static(g, 0).monitor_exit();
        a.load(0).join();
        a.get_static(g, 1).iconst(2).mul().print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

fn spec(p: Program, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new(p).with_seed(seed);
    s.timer_base = 37; // frequent preemption: many switches to replay
    s.timer_jitter = 13;
    s
}

#[test]
fn racy_counter_outcomes_vary_across_seeds() {
    let mut outputs = std::collections::BTreeSet::new();
    for seed in 0..12 {
        let r = passthrough_run(&spec(racy_counter(300), seed), |_| {});
        outputs.insert(r.output.clone());
    }
    assert!(
        outputs.len() > 1,
        "preemption jitter must produce divergent outcomes, got {outputs:?}"
    );
}

#[test]
fn replay_reproduces_racy_counter_exactly() {
    for seed in 0..8 {
        let s = spec(racy_counter(300), seed);
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(
            ok,
            "seed {seed}: replay diverged\n rec: {} / {:#x}\n rep: {} / {:#x}",
            rec.output.trim(),
            rec.fingerprint,
            rep.output.trim(),
            rep.fingerprint
        );
    }
}

#[test]
fn replay_reproduces_producer_consumer() {
    for seed in [1, 5, 9] {
        let s = spec(producer_consumer(), seed);
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "seed {seed}: rec {:?} rep {:?}", rec.output, rep.output);
        assert!(rec.output.starts_with("190\n"), "sum 0..19 = 190");
    }
}

#[test]
fn replay_reproduces_clock_branch_both_ways() {
    // Across seeds the Date()-derived branch goes both ways; replay must
    // reproduce each execution including the wait/notify switch pattern.
    let mut saw = std::collections::BTreeSet::new();
    for seed in 0..20 {
        let s = spec(clock_branch(), seed);
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "seed {seed}");
        saw.insert(rec.output.clone());
        assert_eq!(rec.output, rep.output);
    }
    assert!(saw.len() > 1, "branch should go both ways across seeds");
}

/// Racy counter whose workers also churn the heap, so GC interleaves with
/// preemptive switches.
fn allocating_racy(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("count", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        a.get_static(g, 0).store(1);
        a.iconst(24).new_array_int().pop(); // garbage inside the window
        a.load(1).iconst(1).add().put_static(g, 0);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

#[test]
fn replay_works_under_copying_gc() {
    for seed in [2, 7] {
        let mut s = spec(allocating_racy(300), seed);
        s.vm.gc = GcKind::Copying;
        s.vm.heap_words = 24 * 1024; // force collections during the run
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "seed {seed}");
        assert!(rec.gc_collections > 0, "GC should have run during record");
        assert_eq!(rec.gc_collections, rep.gc_collections);
    }
}

#[test]
fn replay_works_under_mark_sweep_pressure() {
    let mut s = spec(allocating_racy(300), 3);
    s.vm.gc = GcKind::MarkSweep;
    s.vm.heap_words = 12 * 1024;
    let (rec, _rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
    assert!(ok);
    assert!(rec.gc_collections > 0);
}

#[test]
fn native_calls_replayed_without_execution() {
    let mut pb = ProgramBuilder::new();
    let n = pb.native("entropy", 1, true);
    let m = pb.method("main", 0, 1).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(10).ge().if_nz("done");
        a.load(0).native_call(n, 1).print();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.halt();
    });
    let s = spec(pb.finish(m).unwrap(), 4);
    // A genuinely non-deterministic native (host entropy + state).
    let mut counter = 0x9E3779B97F4A7C15u64;
    let natives = move |vm: &mut djvm::Vm| {
        vm.natives.register(
            n,
            Box::new(move |ctx| {
                counter = counter
                    .wrapping_mul(0x5851F42D4C957F2D)
                    .wrapping_add(1442695040888963407);
                NativeOutcome::value((counter >> 33) as i64 ^ ctx.args[0])
            }),
        );
    };
    let (rec, trace) = record_run(&s, natives, SymmetryConfig::full(), true);
    // Replay registers NO natives: if the replayer tried to execute one,
    // the registry would panic — so success proves regeneration.
    let (rep, desyncs) = replay_run(&s, trace, SymmetryConfig::full());
    assert!(desyncs.is_empty(), "{desyncs:?}");
    assert!(rec.matches(&rep));
    assert_eq!(rec.counters.native_calls, rep.counters.native_calls);
}

#[test]
fn native_callbacks_replayed() {
    let mut pb = ProgramBuilder::new();
    let n = pb.native("notifier", 0, false);
    let cb = pb.method("cb", 1, 1).code(|a| {
        a.load(0).print();
        a.ret();
    });
    let m = pb.method("main", 0, 0).code(|a| {
        a.native_call(n, 0);
        a.iconst(999).print();
        a.halt();
    });
    let s = spec(pb.finish(m).unwrap(), 6);
    let natives = move |vm: &mut djvm::Vm| {
        vm.natives.register(
            n,
            Box::new(move |ctx| NativeOutcome {
                ret: 0,
                callbacks: vec![djvm::CallbackReq {
                    method: cb,
                    args: vec![ctx.now_millis % 1000],
                }],
            }),
        );
    };
    let (rec, trace) = record_run(&s, natives, SymmetryConfig::full(), true);
    let (rep, desyncs) = replay_run(&s, trace, SymmetryConfig::full());
    assert!(desyncs.is_empty());
    assert!(rec.matches(&rep));
}

#[test]
fn timed_waits_multi_seed() {
    fn build() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("lock", Ty::Ref).build();
        let lock_cls = pb.class("Lock").build();
        let sleeper = pb.method("sleeper", 1, 1).code(|a| {
            a.load(0).sleep().pop();
            a.get_static(g, 0).monitor_enter();
            a.get_static(g, 0).iconst(25).timed_wait().print();
            a.get_static(g, 0).monitor_exit();
            a.ret();
        });
        let m = pb.method("main", 0, 3).code(|a| {
            a.new(lock_cls).put_static(g, 0);
            a.iconst(10).spawn(sleeper, 1).store(0);
            a.iconst(20).spawn(sleeper, 1).store(1);
            a.iconst(5).spawn(sleeper, 1).store(2);
            a.load(0).join();
            a.load(1).join();
            a.load(2).join();
            a.iconst(777).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }
    for seed in 0..6 {
        let s = spec(build(), seed);
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "seed {seed}: {:?} vs {:?}", rec.output, rep.output);
        assert!(rec.output.contains("777"));
    }
}

#[test]
fn trace_roundtrips_through_binary_encoding() {
    let s = spec(racy_counter(200), 5);
    let (rec, trace) = record_run(&s, |_| {}, SymmetryConfig::full(), false);
    let bytes = trace.encoded();
    let decoded = dejavu::Trace::decode(&bytes).unwrap();
    assert_eq!(decoded, trace);
    let (rep, desyncs) = replay_run(&s, decoded, SymmetryConfig::full());
    assert!(desyncs.is_empty());
    assert!(rec.matches(&rep));
}

#[test]
fn trace_is_small_relative_to_execution() {
    let s = spec(racy_counter(500), 5);
    let (rec, trace) = record_run(&s, |_| {}, SymmetryConfig::full(), false);
    let stats = trace.stats();
    // Millions of instructions, a handful of bytes per preemptive switch.
    assert!(rec.counters.steps > 10_000);
    assert!(stats.switch_count > 5);
    assert!(
        (stats.switch_bytes as f64) / (stats.switch_count as f64) < 4.0,
        "nyp deltas should encode in a few bytes: {stats:?}"
    );
}

#[test]
fn identity_hash_sensitive_program_replays() {
    // Programs whose control flow depends on identityHashCode (allocation
    // serials) are exactly the ones that asymmetric instrumentation would
    // break; with full symmetry they replay.
    let mut pb = ProgramBuilder::new();
    let cls = pb.class("O").field("x", Ty::Int).build();
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(50).ge().if_nz("done");
        a.new(cls).identity_hash().iconst(3).rem().if_z("skip");
        a.iconst(1).pop();
        a.label("skip");
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.new(cls).identity_hash().print();
        a.halt();
    });
    let s = spec(pb.finish(m).unwrap(), 8);
    let (_rec, _rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
    assert!(ok);
}
