//! Tier-2 megablock execution must be **invisible**: like quickening, a
//! pure speed setting. This suite proves it three ways:
//!
//! 1. a qc-style property — random loop-heavy programs × random timer
//!    intervals × forced-deopt injection, asserting fingerprints, trace
//!    bytes, and heap/state digests are identical across all three tiers
//!    (generic, quickened, megablock);
//! 2. the whole workload registry under the `DJVM_NO_MEGA` ablation,
//!    including cross-tier replay (a trace recorded under one tier
//!    replays accurately under another);
//! 3. a deopt-at-every-guard sweep on `fig1_hot` and forced-deopt stress
//!    on the `recursion_storm` / `lock_convoy` schedulers' worst cases.

use dejavu::{record_run, replay_run, ExecSpec, SymmetryConfig};
use djvm::{Program, ProgramBuilder, SplitMix64, Ty};

// ---------------------------------------------------------------------------
// Random loop-heavy guest programs
// ---------------------------------------------------------------------------

/// Generate a verifier-clean program dominated by one hot loop whose body
/// is a random mix of fusible arithmetic, guarded `div`/`rem`, interior
/// forward branches (real deopt sources when taken), devirtualized calls,
/// and — occasionally — an untraceable op that forces the loop to stay
/// tier-1. Optionally races a spawned worker on a shared static.
fn random_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("x", Ty::Int).build();
    let cls = pb.class("Scaler").build();
    pb.virtual_method(cls, "scale", vec![Ty::Int], 2, Some(Ty::Int))
        .code(|a| {
            a.load(1).iconst(3).mul().ret_val();
        });
    let slot = pb.vslot(cls, "scale");

    let iters = 80 + (rng.next_u64() % 300) as i64; // always past the threshold
    let with_worker = rng.next_u64() % 2 == 0;
    let nfrags = 1 + (rng.next_u64() % 5) as usize;
    // Pre-draw the fragment plan so the borrow inside `code` is clean.
    let frags: Vec<(u64, u64, u64, u64)> = (0..nfrags)
        .map(|_| {
            (
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            )
        })
        .collect();

    let worker = with_worker.then(|| {
        pb.method("worker", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(150).ge().if_nz("done");
            a.get_static(g, 0).iconst(1).add().put_static(g, 0);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.ret();
        })
    });

    // Locals: 0 = loop counter, 1..=3 = int scratch, 4 = receiver ref.
    let m = pb.method("main", 0, 5).code(|a| {
        if let Some(w) = worker {
            a.spawn(w, 0).pop();
        }
        a.new(cls).store(4);
        a.iconst(0).store(0);
        a.iconst(1).store(1);
        a.iconst(2).store(2);
        a.iconst(3).store(3);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        for (i, &(r0, r1, r2, r3)) in frags.iter().enumerate() {
            let src = 1 + (r1 % 3) as u16; // scratch local to read
            let dst = 1 + (r2 % 3) as u16; // scratch local to write
            match r0 % 8 {
                0 => {
                    // fused load+const+alu
                    a.load(src).iconst((r3 % 100) as i64 + 1).add().store(dst);
                }
                1 => {
                    // load+load+alu (wrapping mul keeps values bounded-ish)
                    a.load(src).load(dst).add().store(dst);
                }
                2 => {
                    // guarded rem with a nonzero constant divisor
                    a.load(src).iconst((r3 % 7) as i64 + 1).rem().store(dst);
                }
                3 => {
                    // guarded div with a nonzero constant divisor
                    a.load(src).iconst((r3 % 5) as i64 + 2).div().store(dst);
                }
                4 => {
                    // interior forward branch: taken for part of the run,
                    // so the fallthrough-traced guard really deopts
                    let skip = format!("skip{i}");
                    a.load(0).iconst((iters / 2).max(1)).ge().if_nz(&skip);
                    a.load(dst).iconst(1).add().store(dst);
                    a.label(&skip);
                }
                5 => {
                    // devirtualized call inlined through the trace
                    a.load(4).load(src).call_virtual(cls, slot).store(dst);
                }
                6 => {
                    // neg / dup shuffles
                    a.load(src).neg().store(dst);
                    a.load(src).dup().add().store(dst);
                }
                _ => {
                    // untraceable poison (statics): loop stays tier-1 —
                    // neutrality must hold regardless
                    a.get_static(g, 0).iconst(1).add().put_static(g, 0);
                }
            }
        }
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        if with_worker {
            // No handle was kept: worker joins via program exit ordering
            // being irrelevant — just read the shared static.
        }
        a.load(1).print();
        a.load(2).print();
        a.load(3).print();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

fn spec_for(p: Program, seed: u64, interval: u64) -> ExecSpec {
    let mut s = ExecSpec::new(p).with_seed(seed);
    s.timer_base = interval;
    s.timer_jitter = (interval / 4).min(23);
    s.max_steps = 2_000_000;
    s
}

/// The three-tier matrix for one spec: record generic, quickened, and
/// megablock runs and assert every guest observable — fingerprint, state
/// digest, output, status, step/cycle counts, trace bytes — is identical.
fn assert_three_tier_equal(
    s: &ExecSpec,
    natives: fn(&mut djvm::Vm),
    what: &str,
) -> dejavu::RunReport {
    let gen = s.clone().with_quicken(false);
    let quick = s.clone().with_quicken(true).with_mega(false);
    let mega = s.clone().with_quicken(true).with_mega(true);
    let (rec_g, trace_g) = record_run(&gen, natives, SymmetryConfig::full(), true);
    let (rec_q, trace_q) = record_run(&quick, natives, SymmetryConfig::full(), true);
    let (rec_m, trace_m) = record_run(&mega, natives, SymmetryConfig::full(), true);
    assert!(
        rec_g.matches(&rec_q),
        "{what}: generic vs quickened observables"
    );
    assert!(
        rec_q.matches(&rec_m),
        "{what}: quickened vs megablock observables"
    );
    assert_eq!(rec_g.counters.steps, rec_m.counters.steps, "{what}: steps");
    assert_eq!(rec_g.cycles, rec_m.cycles, "{what}: cycles");
    assert_eq!(
        rec_g.counters.yield_points, rec_m.counters.yield_points,
        "{what}: yield points"
    );
    assert_eq!(
        trace_g.encoded(),
        trace_q.encoded(),
        "{what}: trace bytes g/q"
    );
    assert_eq!(
        trace_q.encoded(),
        trace_m.encoded(),
        "{what}: trace bytes q/m"
    );
    rec_m
}

// ---------------------------------------------------------------------------
// 1. The qc property
// ---------------------------------------------------------------------------

#[test]
fn random_programs_are_tier_neutral_across_timers_and_forced_deopts() {
    let mut any_tiered_up = false;
    for seed in 0..10u64 {
        let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9);
        let intervals = [1 + rng.next_u64() % 7, 31 + rng.next_u64() % 200, 10_000];
        for &interval in &intervals {
            let s = spec_for(random_program(seed), seed.wrapping_mul(3) + 1, interval);
            let rec_m =
                assert_three_tier_equal(&s, |_| {}, &format!("seed {seed} interval {interval}"));
            any_tiered_up |= rec_m.mega.tier_ups > 0;

            // Forced-deopt injection on the megablock tier only: still
            // bit-identical to the quickened tier.
            let quick = s.clone().with_quicken(true).with_mega(false);
            let (rec_q, trace_q) = record_run(&quick, |_| {}, SymmetryConfig::full(), true);
            let stride = 1 + rng.next_u64() % 7;
            let inj = s
                .clone()
                .with_quicken(true)
                .with_mega(true)
                .with_mega_deopt_stride(stride)
                .with_mega_deopt_guard(Some((rng.next_u64() % 3) as u32));
            let (rec_i, trace_i) = record_run(&inj, |_| {}, SymmetryConfig::full(), true);
            assert!(
                rec_q.matches(&rec_i),
                "seed {seed} interval {interval}: stride-{stride} injection visible"
            );
            assert_eq!(
                trace_q.encoded(),
                trace_i.encoded(),
                "seed {seed} interval {interval}: injected trace bytes differ"
            );
        }
    }
    assert!(
        any_tiered_up,
        "property is vacuous: no random program ever tiered up"
    );
}

// ---------------------------------------------------------------------------
// 2. The whole registry, including cross-tier replay
// ---------------------------------------------------------------------------

#[test]
fn megablocks_are_neutral_across_the_workload_suite() {
    for w in workloads::registry() {
        let mut s = ExecSpec::new((w.build)()).with_seed(11);
        s.timer_base = 97;
        s.timer_jitter = 23;
        s.max_steps = 3_000_000;
        let rec_m = assert_three_tier_equal(&s, w.natives, w.name);
        if w.name == "fig1_hot" {
            assert!(
                rec_m.mega.tier_ups >= 2 && rec_m.mega.iters > 1_000,
                "fig1_hot must genuinely run tier-2: {:?}",
                rec_m.mega
            );
        }
    }
}

#[test]
fn traces_replay_accurately_across_tiers() {
    for name in ["fig1_hot", "racy_counter", "recursion_storm", "lock_convoy"] {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let mut s = ExecSpec::new((w.build)()).with_seed(7);
        s.timer_base = 97;
        s.timer_jitter = 23;
        s.max_steps = 3_000_000;
        let quick = s.clone().with_quicken(true).with_mega(false);
        let mega = s.clone().with_quicken(true).with_mega(true);
        // Record tier-1, replay tier-2 — and the reverse.
        let (rec_q, trace_q) = record_run(&quick, w.natives, SymmetryConfig::full(), true);
        let (rep_m, de_m) = replay_run(&mega, trace_q, SymmetryConfig::full());
        assert!(
            de_m.is_empty(),
            "{name}: desyncs replaying tier-1 trace on tier-2"
        );
        assert!(
            rec_q.matches(&rep_m),
            "{name}: tier-1 record vs tier-2 replay"
        );
        let (rec_m, trace_m) = record_run(&mega, w.natives, SymmetryConfig::full(), true);
        let (rep_q, de_q) = replay_run(&quick, trace_m, SymmetryConfig::full());
        assert!(
            de_q.is_empty(),
            "{name}: desyncs replaying tier-2 trace on tier-1"
        );
        assert!(
            rec_m.matches(&rep_q),
            "{name}: tier-2 record vs tier-1 replay"
        );
        if name == "fig1_hot" {
            assert!(
                rep_m.mega.iters > 0,
                "fig1_hot replay must batch iterations too: {:?}",
                rep_m.mega
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Deopt-at-every-guard sweep and stress injection
// ---------------------------------------------------------------------------

#[test]
fn fig1_hot_survives_deopt_at_every_guard() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "fig1_hot")
        .unwrap();
    let mut s = ExecSpec::new((w.build)()).with_seed(5);
    s.timer_base = 97;
    s.timer_jitter = 23;
    s.max_steps = 3_000_000;
    let quick = s.clone().with_quicken(true).with_mega(false);
    let (rec_q, trace_q) = record_run(&quick, w.natives, SymmetryConfig::full(), true);
    // fig1_hot's delay-loop block has 1 guard; sweep past it to cover
    // the every-guard and the no-such-guard cases uniformly.
    for g in 0..4u32 {
        let inj = s
            .clone()
            .with_quicken(true)
            .with_mega(true)
            .with_mega_deopt_guard(Some(g));
        let (rec_i, trace_i) = record_run(&inj, w.natives, SymmetryConfig::full(), true);
        assert!(rec_q.matches(&rec_i), "deopt at guard {g} visible");
        assert_eq!(
            trace_q.encoded(),
            trace_i.encoded(),
            "guard {g} trace bytes"
        );
        if g == 0 {
            assert!(
                rec_i.mega.forced_deopts > 0,
                "guard-0 injection must actually fire: {:?}",
                rec_i.mega
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Coarse fingerprinting: the closed-form stepper's regime
// ---------------------------------------------------------------------------

/// Every test above runs under `FingerprintMode::Full`, whose per-pc hash
/// chain forces the step-by-step megablock loop. The production `Coarse`
/// mode arms the closed-form stepper (whole iteration batches retired with
/// one multiply), so the fast path needs its own neutrality proof — trace
/// bytes, cross-tier replay, and a witness that it actually fired.
#[test]
fn coarse_fingerprint_arms_the_closed_form_and_stays_neutral() {
    for (seed, interval) in [(3u64, 97u64), (5, 211), (8, 10_000)] {
        let s = spec_for(random_program(seed), seed + 1, interval)
            .with_fingerprint(djvm::FingerprintMode::Coarse);
        assert_three_tier_equal(
            &s,
            |_| {},
            &format!("coarse seed {seed} interval {interval}"),
        );
    }

    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "fig1_hot")
        .unwrap();
    let mut s = ExecSpec::new((w.build)()).with_seed(9);
    s.timer_base = 211;
    s.timer_jitter = 23;
    s.max_steps = 3_000_000;
    let s = s.with_fingerprint(djvm::FingerprintMode::Coarse);
    let rec_m = assert_three_tier_equal(&s, w.natives, "fig1_hot coarse");
    assert!(
        rec_m.mega.closed_iters > 0,
        "closed form must fire on fig1_hot under coarse fingerprints: {:?}",
        rec_m.mega
    );

    // Cross-tier replay in the coarse regime: a tier-1 trace drives a
    // closed-form tier-2 replay and vice versa, desync-free.
    let quick = s.clone().with_quicken(true).with_mega(false);
    let mega = s.clone().with_quicken(true).with_mega(true);
    let (rec_q, trace_q) = record_run(&quick, w.natives, SymmetryConfig::full(), true);
    let (rep_m, de_m) = replay_run(&mega, trace_q, SymmetryConfig::full());
    assert!(
        de_m.is_empty(),
        "coarse: desyncs replaying tier-1 trace on tier-2"
    );
    assert!(
        rec_q.matches(&rep_m),
        "coarse: tier-1 record vs tier-2 replay"
    );
    let (rec_m2, trace_m) = record_run(&mega, w.natives, SymmetryConfig::full(), true);
    let (rep_q, de_q) = replay_run(&quick, trace_m, SymmetryConfig::full());
    assert!(
        de_q.is_empty(),
        "coarse: desyncs replaying tier-2 trace on tier-1"
    );
    assert!(
        rec_m2.matches(&rep_q),
        "coarse: tier-2 record vs tier-1 replay"
    );
}

#[test]
fn stress_workloads_survive_forced_deopt_strides() {
    for name in ["recursion_storm", "lock_convoy"] {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let mut s = ExecSpec::new((w.build)()).with_seed(13);
        s.timer_base = 61;
        s.timer_jitter = 17;
        s.max_steps = 3_000_000;
        let quick = s.clone().with_quicken(true).with_mega(false);
        let (rec_q, trace_q) = record_run(&quick, w.natives, SymmetryConfig::full(), true);
        for stride in [1u64, 3, 17] {
            let inj = s
                .clone()
                .with_quicken(true)
                .with_mega(true)
                .with_mega_deopt_stride(stride);
            let (rec_i, trace_i) = record_run(&inj, w.natives, SymmetryConfig::full(), true);
            assert!(rec_q.matches(&rec_i), "{name}: stride {stride} visible");
            assert_eq!(
                trace_q.encoded(),
                trace_i.encoded(),
                "{name}: stride {stride} trace bytes"
            );
        }
    }
}
