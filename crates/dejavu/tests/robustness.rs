//! Robustness: replay with wrong, truncated, or foreign traces must fail
//! *detectably* (desyncs or report mismatch), never silently claim
//! accuracy — the flip side of the paper's absolute-accuracy requirement.

use dejavu::{record_run, replay_run, ExecSpec, SymmetryConfig, Trace};
use djvm::{Program, ProgramBuilder, Ty};

fn racy(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("count", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        a.get_static(g, 0).store(1);
        a.iconst(0).store(2);
        a.label("d");
        a.load(2).iconst(3).ge().if_nz("dd");
        a.load(2).iconst(1).add().store(2);
        a.goto("d");
        a.label("dd");
        a.load(1).iconst(1).add().put_static(g, 0);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.now().pop(); // a clock read, to exercise the data stream
        a.halt();
    });
    pb.finish(m).unwrap()
}

fn spec(seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new(racy(200)).with_seed(seed);
    s.timer_base = 37;
    s.timer_jitter = 13;
    s
}

#[test]
fn replaying_another_executions_trace_is_detected() {
    let (rec_a, trace_a) = record_run(&spec(1), |_| {}, SymmetryConfig::full(), true);
    let (rec_b, trace_b) = record_run(&spec(2), |_| {}, SymmetryConfig::full(), true);
    // Make sure the two executions genuinely differ.
    assert_ne!(rec_a.fingerprint, rec_b.fingerprint);
    // Replay B's trace against A's spec: the run must not match A's record.
    let (rep, desyncs) = replay_run(&spec(1), trace_b, SymmetryConfig::full());
    let silently_accurate = rep.matches(&rec_a) && desyncs.is_empty();
    assert!(!silently_accurate, "cross-trace replay must be detectable");
    // And A's own trace still works.
    let (rep_a, d) = replay_run(&spec(1), trace_a, SymmetryConfig::full());
    assert!(d.is_empty() && rep_a.matches(&rec_a));
}

#[test]
fn truncated_switch_stream_changes_the_execution() {
    let (rec, mut trace) = record_run(&spec(3), |_| {}, SymmetryConfig::full(), true);
    let n = trace.switches.len();
    assert!(n > 4, "need some switches to truncate");
    trace.switches.truncate(n / 2);
    let (rep, _desyncs) = replay_run(&spec(3), trace, SymmetryConfig::full());
    // With half the preemptive switches missing, the execution differs.
    assert!(!rep.matches(&rec), "truncation must not replay accurately");
}

#[test]
fn exhausted_data_stream_reports_desyncs() {
    let (_rec, mut trace) = record_run(&spec(4), |_| {}, SymmetryConfig::full(), true);
    assert!(!trace.data.is_empty());
    trace.data.clear();
    let (_rep, desyncs) = replay_run(&spec(4), trace, SymmetryConfig::full());
    assert!(
        !desyncs.is_empty(),
        "missing clock records must surface as desyncs"
    );
}

#[test]
fn corrupted_switch_deltas_are_detected() {
    let (rec, mut trace) = record_run(&spec(5), |_| {}, SymmetryConfig::full(), true);
    assert!(trace.paranoid);
    // Corrupt several switch deltas: the forced switches land at the wrong
    // yield points (often on the wrong thread — which paranoid records
    // localize — and always producing a different execution).
    let n = trace.switches.len();
    for i in (n / 3)..(n / 3 + 5).min(n) {
        trace.switches[i].nyp = trace.switches[i].nyp.saturating_add(7).max(1);
    }
    let (rep, desyncs) = replay_run(&spec(5), trace, SymmetryConfig::full());
    assert!(
        !rep.matches(&rec) || !desyncs.is_empty(),
        "corruption must never replay silently as the original"
    );
}

#[test]
fn a_program_with_no_preemption_needs_no_switch_records() {
    // Single-threaded program: no preemptive switch matters, the trace's
    // switch stream may still have entries (the timer fires) but replay is
    // exact either way.
    let mut pb = ProgramBuilder::new();
    let m = pb.method("main", 0, 1).code(|a| {
        a.iconst(0).store(0);
        a.label("t");
        a.load(0).iconst(500).ge().if_nz("d");
        a.load(0).iconst(1).add().store(0);
        a.goto("t");
        a.label("d");
        a.load(0).print();
        a.halt();
    });
    let mut s = ExecSpec::new(pb.finish(m).unwrap()).with_seed(6);
    s.timer_base = 37;
    s.timer_jitter = 13;
    let (rec, trace) = record_run(&s, |_| {}, SymmetryConfig::full(), true);
    let (rep, desyncs) = replay_run(&s, trace, SymmetryConfig::full());
    assert!(desyncs.is_empty());
    assert!(rec.matches(&rep));
    assert_eq!(rec.output, "500\n");
}

#[test]
fn trace_decode_rejects_garbage() {
    assert!(Trace::decode(b"").is_none());
    assert!(Trace::decode(b"nope").is_none());
    assert!(Trace::decode(&[0xFF; 64]).is_none());
}

#[test]
fn empty_trace_replays_an_unpreempted_prefix() {
    // Replaying an empty trace = "no preemptions, no data": fine for a
    // program that needs neither.
    let mut pb = ProgramBuilder::new();
    let m = pb.method("main", 0, 0).code(|a| {
        a.iconst(21).iconst(2).mul().print();
        a.halt();
    });
    let s = ExecSpec::new(pb.finish(m).unwrap());
    let (rep, desyncs) = replay_run(&s, Trace::default(), SymmetryConfig::full());
    assert!(desyncs.is_empty());
    assert_eq!(rep.output, "42\n");
}
