//! Quickened dispatch (superinstruction fusion, devirtualization,
//! pre-decoded operands) must be **invisible**: a pure speed setting.
//! This suite proves it across the whole workload registry — every
//! guest-visible observable (fingerprint, final state digest, output,
//! status, step and cycle counts) and every recorded trace byte is
//! identical with quickening on vs. off, and a trace recorded under one
//! dispatch mode replays accurately under the other, so recorded logs
//! outlive interpreter upgrades that change dispatch strategy but not
//! semantics.

use dejavu::{record_run, replay_run, ExecSpec, SymmetryConfig};

fn spec_for(w: &workloads::Workload, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 97;
    s.timer_jitter = 23;
    // Bound heavyweight workloads. Pausing at the step budget is itself
    // part of the invariant: the quickened loop must pause on exactly
    // the same instruction boundary as the generic one.
    s.max_steps = 3_000_000;
    s
}

#[test]
fn quickening_is_neutral_across_the_workload_suite() {
    for w in workloads::registry() {
        let s = spec_for(&w, 11);
        let q = s.clone().with_quicken(true);
        let u = s.clone().with_quicken(false);
        let (rec_q, trace_q) = record_run(&q, w.natives, SymmetryConfig::full(), true);
        let (rec_u, trace_u) = record_run(&u, w.natives, SymmetryConfig::full(), true);
        assert!(
            rec_q.matches(&rec_u),
            "{}: record observables differ across dispatch modes",
            w.name
        );
        assert_eq!(
            rec_q.counters.steps, rec_u.counters.steps,
            "{}: step counts differ",
            w.name
        );
        assert_eq!(
            rec_q.cycles, rec_u.cycles,
            "{}: cycle counts differ",
            w.name
        );
        assert_eq!(
            trace_q.encoded(),
            trace_u.encoded(),
            "{}: trace bytes differ",
            w.name
        );
    }
}

#[test]
fn traces_replay_accurately_across_dispatch_modes() {
    for w in workloads::registry() {
        let s = spec_for(&w, 3);
        let q = s.clone().with_quicken(true);
        let u = s.clone().with_quicken(false);
        // Record unfused, replay quickened — and the reverse.
        let (rec_u, trace_u) = record_run(&u, w.natives, SymmetryConfig::full(), true);
        let (rep_q, de_q) = replay_run(&q, trace_u, SymmetryConfig::full());
        assert!(
            de_q.is_empty(),
            "{}: desyncs replaying unfused trace quickened",
            w.name
        );
        assert!(
            rec_u.matches(&rep_q),
            "{}: unfused record vs quickened replay",
            w.name
        );
        let (rec_q, trace_q) = record_run(&q, w.natives, SymmetryConfig::full(), true);
        let (rep_u, de_u) = replay_run(&u, trace_q, SymmetryConfig::full());
        assert!(
            de_u.is_empty(),
            "{}: desyncs replaying quickened trace unfused",
            w.name
        );
        assert!(
            rec_q.matches(&rep_u),
            "{}: quickened record vs unfused replay",
            w.name
        );
    }
}

#[test]
fn interval_one_is_neutral_on_scheduling_workloads() {
    // A timer interval of 1 can expire inside every superinstruction
    // window, so the quickened loop must take the split path on every
    // fused op and still land on identical boundaries.
    for name in ["fig1_ab", "racy_counter", "producer_consumer"] {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let mut s = spec_for(&w, 5);
        s.timer_base = 1;
        s.timer_jitter = 0;
        s.max_steps = 400_000;
        let q = s.clone().with_quicken(true);
        let u = s.clone().with_quicken(false);
        let (rec_q, trace_q) = record_run(&q, w.natives, SymmetryConfig::full(), true);
        let (rec_u, trace_u) = record_run(&u, w.natives, SymmetryConfig::full(), true);
        assert!(
            rec_q.matches(&rec_u),
            "{name}: interval-1 observables differ"
        );
        assert_eq!(
            trace_q.encoded(),
            trace_u.encoded(),
            "{name}: interval-1 trace bytes differ"
        );
    }
}
