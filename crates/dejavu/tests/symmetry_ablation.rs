//! Symmetry ablations (paper §2.4, experiment E10).
//!
//! DejaVu's instrumentation behaves differently in record and replay mode
//! by definition; the paper's symmetry machinery makes its guest-visible
//! side effects identical anyway. These tests disable one mechanism at a
//! time and demonstrate that replay then *diverges* on a workload that can
//! observe the perturbation — and that the very same workload replays
//! accurately with full symmetry. This shows each mechanism is necessary,
//! not decorative.

use dejavu::{record_replay, Ablation, ExecSpec, SymmetryConfig};
use djvm::{Program, ProgramBuilder, Ty};

/// A workload that observes the perturbation channels:
/// * racy shared counter with yield points in the window (scheduling),
/// * `identityHashCode` of fresh allocations folded into the output
///   (allocation-order sensitivity — the serial number channel),
/// * enough preemptive switches that the flush/fill helpers run.
fn observer_workload(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("count", Ty::Int)
        .static_field("hashmix", Ty::Int)
        .build();
    let cls = pb.class("O").field("x", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        a.get_static(g, 0).store(1);
        // delay loop: yield points inside the racy window
        a.iconst(0).store(2);
        a.label("delay");
        a.load(2).iconst(2).ge().if_nz("delay_done");
        a.load(2).iconst(1).add().store(2);
        a.goto("delay");
        a.label("delay_done");
        a.load(1).iconst(1).add().put_static(g, 0);
        // fold a fresh allocation's identity hash into shared state
        a.get_static(g, 1)
            .new(cls)
            .identity_hash()
            .bxor()
            .put_static(g, 1);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.iconst(0).put_static(g, 1);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.get_static(g, 1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Recursion to a varying depth with switch activity at depth: puts `sp`
/// near the stack boundary when instrumentation helpers run, exposing the
/// stack-overflow asymmetry.
fn deep_stack_workload() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("acc", Ty::Int).build();
    let cls = pb.class("O").field("x", Ty::Int).build();
    // spin folds the identity hash (allocation serial) of fresh objects
    // into shared state, so any instrumentation-induced allocation (like a
    // stack-growth array) shifts subsequent serials observably.
    let spin = pb.method("spin", 1, 2).code(|a| {
        a.iconst(0).store(1);
        a.label("top");
        a.load(1).load(0).ge().if_nz("done");
        a.get_static(g, 0)
            .new(cls)
            .identity_hash()
            .bxor()
            .put_static(g, 0);
        a.load(1).iconst(1).add().store(1);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    // down is method id 1 (spin is 0): recurse into itself by id.
    let down = pb.func("down", 1, 1).code(|a| {
        a.load(0).if_z("base");
        a.load(0).iconst(1).sub().call(1);
        a.ret_val();
        a.label("base");
        a.iconst(40).call(spin);
        a.iconst(0).ret_val();
    });
    assert_eq!(down, 1);
    let worker = pb.method("worker", 0, 2).code(|a| {
        // vary the depth across iterations: 1..=16
        a.iconst(1).store(0);
        a.label("top");
        a.load(0).iconst(16).gt().if_nz("done");
        a.load(0).call(down).pop();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

fn spec(p: Program, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new(p).with_seed(seed);
    s.timer_base = 31;
    s.timer_jitter = 11;
    s
}

/// With full symmetry the observer workload replays accurately on every
/// seed we test; with a given ablation it diverges on at least one.
fn ablation_diverges(ablation: Ablation, build: fn() -> Program, seeds: std::ops::Range<u64>) {
    let mut diverged = false;
    for seed in seeds.clone() {
        let s = spec(build(), seed);
        let (_, _, full_ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(full_ok, "full symmetry must stay accurate (seed {seed})");
    }
    'outer: for seed in seeds {
        let stacks: &[usize] = if ablation == Ablation::EagerStackGrowth {
            &[88, 96, 104, 112, 128] // sweep near the boundary
        } else {
            &[256]
        };
        for &stack in stacks {
            let mut s = spec(build(), seed);
            s.vm.initial_stack = stack;
            let (_, _, ok) = record_replay(&s, |_| {}, SymmetryConfig::ablate(ablation));
            if !ok {
                diverged = true;
                break 'outer;
            }
        }
    }
    assert!(
        diverged,
        "ablating {:?} should break replay on some seed",
        ablation
    );
}

fn observer_300() -> Program {
    observer_workload(300)
}

#[test]
fn ablate_allocation_symmetry_diverges() {
    ablation_diverges(Ablation::PreallocateBuffer, observer_300, 0..6);
}

#[test]
fn ablate_preload_compile_diverges() {
    ablation_diverges(Ablation::PreloadCompile, observer_300, 0..6);
}

#[test]
fn ablate_warmup_io_diverges() {
    ablation_diverges(Ablation::WarmupIo, observer_300, 0..6);
}

#[test]
fn ablate_live_clock_diverges() {
    ablation_diverges(Ablation::LiveClock, observer_300, 0..6);
}

#[test]
fn ablate_eager_stack_growth_diverges() {
    ablation_diverges(Ablation::EagerStackGrowth, deep_stack_workload, 0..10);
}

#[test]
fn naive_instrumentation_diverges() {
    let mut diverged = false;
    for seed in 0..4 {
        let s = spec(observer_workload(300), seed);
        let (_, _, ok) = record_replay(&s, |_| {}, SymmetryConfig::naive());
        if !ok {
            diverged = true;
        }
    }
    assert!(diverged, "fully naive instrumentation cannot replay");
}

#[test]
fn full_symmetry_accuracy_rate_is_total() {
    // E6-style sweep on the observer workload: 100% accuracy.
    for seed in 0..10 {
        let s = spec(observer_workload(200), seed);
        let (_, _, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "seed {seed}");
    }
}
