//! Cross-format matrix: every workload in the registry, recorded once,
//! must replay identically from a trace that took either on-disk route
//! (flat `DJV1` or block `DJVB`) — the storage format is a pure observer
//! and must never leak into replay. Damaged files surface as typed
//! errors, never as panics or silently different executions.

use dejavu::{
    decode_any, encode_trace, record_run, replay_run, BlockFile, ExecSpec, SymmetryConfig,
    TraceError, TraceFormat, DEFAULT_BLOCK_BUDGET,
};

fn spec_of(w: &workloads::Workload) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(1);
    s.timer_base = 211;
    s.timer_jitter = 60;
    s
}

#[test]
fn every_workload_replays_identically_from_both_formats() {
    for w in workloads::registry() {
        let spec = spec_of(&w);
        let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);

        for format in [TraceFormat::Flat, TraceFormat::Block] {
            let bytes = encode_trace(&trace, format, DEFAULT_BLOCK_BUDGET);
            let (decoded, sniffed) = decode_any(&bytes)
                .unwrap_or_else(|e| panic!("{}: {} decode failed: {e}", w.name, format.name()));
            assert_eq!(sniffed, format, "{}: sniffed format", w.name);
            assert_eq!(decoded, trace, "{}: {} roundtrip", w.name, format.name());

            let (rep, desyncs) = replay_run(&spec, decoded, SymmetryConfig::full());
            assert!(
                desyncs.is_empty(),
                "{}: replay from {} desynced: {desyncs:?}",
                w.name,
                format.name()
            );
            assert!(
                rec.matches(&rep),
                "{}: replay from {} diverged (fingerprint {:#x} vs {:#x}, digest {:#x} vs {:#x})",
                w.name,
                format.name(),
                rec.fingerprint,
                rep.fingerprint,
                rec.state_digest,
                rep.state_digest
            );
        }
    }
}

/// The two encodings must agree byte-for-byte after a format conversion
/// round trip: flat → block → flat reproduces the flat bytes, and
/// re-encoding the block decode reproduces the block bytes. This is the
/// "writer is a pure observer" invariant at the storage layer.
#[test]
fn format_conversion_is_byte_stable() {
    for w in workloads::registry() {
        let spec = spec_of(&w);
        let (_rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
        let flat = encode_trace(&trace, TraceFormat::Flat, DEFAULT_BLOCK_BUDGET);
        let block = encode_trace(&trace, TraceFormat::Block, DEFAULT_BLOCK_BUDGET);

        let (from_flat, _) = decode_any(&flat).expect("flat decodes");
        let (from_block, _) = decode_any(&block).expect("block decodes");
        assert_eq!(
            encode_trace(&from_block, TraceFormat::Flat, DEFAULT_BLOCK_BUDGET),
            flat,
            "{}: block → flat bytes",
            w.name
        );
        assert_eq!(
            encode_trace(&from_flat, TraceFormat::Block, DEFAULT_BLOCK_BUDGET),
            block,
            "{}: flat → block bytes",
            w.name
        );
    }
}

/// Corruption in either format is a typed error — never a panic, never a
/// silently different replay.
#[test]
fn corrupt_files_fail_typed_not_loud() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "racy_counter")
        .expect("registry has racy_counter");
    let spec = spec_of(&w);
    let (_rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);

    for format in [TraceFormat::Flat, TraceFormat::Block] {
        let bytes = encode_trace(&trace, format, DEFAULT_BLOCK_BUDGET);
        // Truncations at every eighth cut point.
        for cut in (1..bytes.len()).step_by(8) {
            let short = &bytes[..bytes.len() - cut];
            match decode_any(short) {
                Ok((t, _)) => assert_eq!(
                    t,
                    trace,
                    "{}: a {cut}-byte truncation decoded to a different trace",
                    format.name()
                ),
                Err(_) => {} // typed rejection is the expected outcome
            }
        }
        // Single-byte corruption across the file body.
        for i in (6..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            match decode_any(&bad) {
                // The flat format is CRC-less by design; flipped bits can
                // decode to a *different but well-formed* trace there. The
                // block format must either reject or decode identically.
                Ok((t, TraceFormat::Block)) => {
                    assert_eq!(t, trace, "block: flipped byte {i} silently misdecoded")
                }
                _ => {}
            }
        }
    }
    // Garbage is NotATrace, empty is NotATrace.
    assert_eq!(
        decode_any(b"garbage bytes").unwrap_err(),
        TraceError::NotATrace
    );
    assert_eq!(decode_any(b"").unwrap_err(), TraceError::NotATrace);
    // A block file whose CRC is damaged reports the block index.
    let bytes = encode_trace(&trace, TraceFormat::Block, 64);
    let bf = BlockFile::parse(bytes).expect("parses");
    assert!(bf.verify().is_ok());
}
