//! The profiler's tentpole invariant: the flight recorder is a **pure
//! observer**. Arming it on a replay must leave every guest-visible
//! quantity — fingerprint, state digest, output, status — bit-identical
//! to the unprofiled replay, across the whole workload registry. Its
//! artifacts (Chrome trace, folded stacks, summary) must be
//! byte-deterministic functions of the trace, and on the fig1 hot-loop
//! family the attribution must name the known-hot method at the top.

use dejavu::{profile_replay, record_run, replay_run, ExecSpec, SymmetryConfig};

fn spec_for(w: &workloads::Workload, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 101;
    s.timer_jitter = 37;
    s
}

/// Profiler on vs. off is bit-identical for every registered workload.
#[test]
fn profiler_neutral_across_the_registry() {
    for w in workloads::registry() {
        let seed = 3;
        let spec = spec_for(&w, seed);
        let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
        let (plain, d_off) = replay_run(&spec, trace.clone(), SymmetryConfig::full());
        let (prof, rep, d_on) = profile_replay(&spec, trace, SymmetryConfig::full());
        assert_eq!(
            d_off.len(),
            d_on.len(),
            "{}: desync count changed by the profiler",
            w.name
        );
        assert!(
            rep.matches(&plain),
            "{}: profiled replay differs from unprofiled",
            w.name
        );
        assert_eq!(
            rep.fingerprint, rec.fingerprint,
            "{}: profiled replay differs from the record",
            w.name
        );
        assert_eq!(
            prof.fingerprint, rep.fingerprint,
            "{}: report identity",
            w.name
        );
        // Every profiled run accounts its full logical length.
        assert_eq!(
            prof.final_cycles, rep.cycles,
            "{}: cycle accounting",
            w.name
        );
    }
}

/// The three artifacts are byte-identical across repeated replays of the
/// same trace, and the JSON ones are in canonical form.
#[test]
fn artifacts_are_deterministic_and_canonical() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "fig1_hot")
        .expect("fig1_hot registered");
    let spec = spec_for(&w, 7);
    let (_, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let (p1, _, _) = profile_replay(&spec, trace.clone(), SymmetryConfig::full());
    let (p2, _, _) = profile_replay(&spec, trace, SymmetryConfig::full());
    let (c1, c2) = (p1.chrome_json().to_string(), p2.chrome_json().to_string());
    assert_eq!(c1, c2, "chrome artifact bytes");
    assert_eq!(p1.folded(), p2.folded(), "folded artifact bytes");
    let (s1, s2) = (
        p1.summary_json(10).to_string(),
        p2.summary_json(10).to_string(),
    );
    assert_eq!(s1, s2, "summary bytes");
    for doc in [&c1, &s1] {
        let j = codec::Json::parse(doc).expect("valid JSON");
        assert_eq!(doc, &j.to_canonical_string(), "canonical form");
    }
    // The Chrome trace uses the logical timebase, never wall time.
    assert!(c1.contains("\"timebase\":\"logical-cycles\""), "{c1}");
}

/// On the fig1 hot-loop family the profiler names the known-hot method:
/// the spin loops live in `main` and `t2`, which must own the top of the
/// folded output (and the exclusive-cycle ranking) — not the tiny
/// trace-filling callee.
#[test]
fn fig1_hot_attributes_the_hot_loop() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "fig1_hot")
        .expect("fig1_hot registered");
    let spec = spec_for(&w, 5);
    let (_, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let (prof, _, desyncs) = profile_replay(&spec, trace, SymmetryConfig::full());
    assert!(desyncs.is_empty());
    let hot = prof.hottest_method().expect("cycles attributed");
    assert!(
        hot == "main" || hot == "t2",
        "expected a fig1 spin loop at the top, got {hot}"
    );
    // The folded output's heaviest line agrees with the ranking.
    let heaviest = prof
        .folded()
        .lines()
        .max_by_key(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .unwrap()
        .to_string();
    let stack = heaviest.rsplit_once(' ').unwrap().0;
    let leaf = stack.rsplit(';').next().unwrap();
    assert!(
        leaf == "main" || leaf == "t2",
        "heaviest folded line should be a spin loop: {heaviest}"
    );
}

/// Phase spans cannot leak cycles: per-thread attribution sums to the
/// run's total, and the interp+sched split is exact.
#[test]
fn cycle_attribution_is_complete() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "producer_consumer")
        .expect("producer_consumer registered");
    let spec = spec_for(&w, 2);
    let (_, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let (prof, rep, _) = profile_replay(&spec, trace, SymmetryConfig::full());
    let m = &prof.model;
    assert_eq!(m.total_cycles, rep.cycles);
    let by_thread: u64 = m.thread_cycles.values().sum();
    let sched = m.phases[telemetry::profile::PHASE_SCHED as usize].cycles;
    let interp = m.phases[telemetry::profile::PHASE_INTERP as usize].cycles;
    assert_eq!(
        by_thread, m.total_cycles,
        "per-thread attribution covers the run"
    );
    assert_eq!(interp + sched, m.total_cycles, "interp + sched = total");
}

/// Tier-2 megablocks unfold to their constituent QOp spans: profiling the
/// same trace with megablocks on and off yields byte-identical artifacts
/// and a complete attribution, while the tier-2 replay provably tiered up
/// (a vacuous pass would mean the profiler silently pinned tier 1).
#[test]
fn megablock_unfold_keeps_attribution_complete() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "fig1_hot")
        .expect("fig1_hot registered");
    let spec = spec_for(&w, 4);
    let (_, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let off = spec.clone().with_mega(false);
    let (p_off, rep_off, d_off) = profile_replay(&off, trace.clone(), SymmetryConfig::full());
    let (p_on, rep_on, d_on) = profile_replay(&spec, trace, SymmetryConfig::full());
    assert!(d_off.is_empty() && d_on.is_empty());
    assert!(
        rep_on.mega.tier_ups > 0,
        "profiled replay never tiered up: {:?}",
        rep_on.mega
    );
    assert!(rep_on.matches(&rep_off), "tier-2 visible to the profiler");
    assert_eq!(p_on.final_cycles, rep_on.cycles, "tier-2 cycle accounting");
    assert_eq!(
        p_on.chrome_json().to_string(),
        p_off.chrome_json().to_string(),
        "chrome artifact differs across tiers"
    );
    assert_eq!(p_on.folded(), p_off.folded(), "folded artifact differs");
    assert_eq!(
        p_on.summary_json(10).to_string(),
        p_off.summary_json(10).to_string(),
        "summary differs across tiers"
    );
}
