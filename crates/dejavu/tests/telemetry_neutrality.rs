//! The tentpole invariant of the observability layer: **telemetry is
//! perturbation-free**. Turning the sink on must leave every guest-visible
//! quantity — fingerprint, state digest, output, status — bit-identical,
//! for the fully-symmetric configuration *and* for every ablated one
//! (ablations make record and replay diverge from each other, but the
//! observer must still not change either side). And when a replay *does*
//! diverge, the record/replay event rings must localize the first
//! mismatched event.

use dejavu::{
    record_replay, record_replay_forensic, run_metrics_json, Ablation, ExecSpec, SymmetryConfig,
};
use djvm::{Program, ProgramBuilder, Ty};

/// Two threads race on a shared counter with yield points in the window
/// and fold fresh-allocation identity hashes into shared state — sensitive
/// to scheduling, allocation order, and logical-clock perturbation alike.
fn sensitive_workload(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("count", Ty::Int)
        .static_field("mix", Ty::Int)
        .build();
    let cls = pb.class("C").field("x", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        a.get_static(g, 0).store(1);
        a.iconst(0).store(2);
        a.label("delay");
        a.load(2).iconst(2).ge().if_nz("delay_done");
        a.load(2).iconst(1).add().store(2);
        a.goto("delay");
        a.label("delay_done");
        a.load(1).iconst(1).add().put_static(g, 0);
        a.get_static(g, 1)
            .new(cls)
            .identity_hash()
            .bxor()
            .put_static(g, 1);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.iconst(0).put_static(g, 1);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.get_static(g, 1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

fn spec(seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new(sensitive_workload(200)).with_seed(seed);
    s.timer_base = 31;
    s.timer_jitter = 11;
    s
}

/// Telemetry on vs. off leaves both sides of a record/replay pair
/// bit-identical, under full symmetry and under every single ablation.
#[test]
fn telemetry_neutral_for_every_symmetry_config() {
    let mut configs = vec![
        ("full", SymmetryConfig::full()),
        ("naive", SymmetryConfig::naive()),
    ];
    for a in Ablation::ALL {
        configs.push((a.name(), SymmetryConfig::ablate(a)));
    }
    for (name, sym) in configs {
        for seed in 0..3u64 {
            let off = spec(seed);
            let on = spec(seed).with_telemetry();
            let (rec_off, rep_off, ok_off) = record_replay(&off, |_| {}, sym);
            let (rec_on, rep_on, ok_on) = record_replay(&on, |_| {}, sym);
            assert!(
                rec_off.matches(&rec_on),
                "record perturbed by telemetry: sym={name} seed={seed}"
            );
            assert!(
                rep_off.matches(&rep_on),
                "replay perturbed by telemetry: sym={name} seed={seed}"
            );
            assert_eq!(
                ok_off, ok_on,
                "accuracy verdict changed by telemetry: sym={name} seed={seed}"
            );
        }
    }
}

/// A forced desync (the liveClock ablation) yields a divergence report
/// that names the first mismatched event's index and kind by aligning the
/// record-side and replay-side rings.
#[test]
fn forced_desync_is_localized_by_the_rings() {
    let sym = SymmetryConfig::ablate(Ablation::LiveClock);
    let mut localized = false;
    for seed in 0..8u64 {
        let s = spec(seed).with_telemetry();
        let out = record_replay_forensic(&s, |_| {}, sym);
        if out.accurate {
            continue;
        }
        let report = out.report.as_ref().expect("inaccurate => report");
        if let Some(first) = &report.first {
            let text = report.describe();
            assert!(
                text.contains(&format!("first divergence at event #{}", first.seq)),
                "{text}"
            );
            assert!(text.contains(&format!("({})", first.kind_name())), "{text}");
            localized = true;
            break;
        }
    }
    assert!(
        localized,
        "liveClock ablation should produce at least one ring-localized divergence"
    );
}

/// Metrics JSON is byte-deterministic: two identical runs serialize to the
/// same bytes, and the document is in canonical (sorted-key) form.
#[test]
fn metrics_json_is_byte_deterministic() {
    let run = || {
        let s = spec(5).with_telemetry();
        let out = record_replay_forensic(&s, |_| {}, SymmetryConfig::full());
        assert!(out.accurate);
        (
            run_metrics_json(&out.record, Some(&out.trace_stats)).to_string(),
            run_metrics_json(&out.replay, None).to_string(),
        )
    };
    let (rec1, rep1) = run();
    let (rec2, rep2) = run();
    assert_eq!(rec1, rec2, "record metrics are byte-identical across runs");
    assert_eq!(rep1, rep2, "replay metrics are byte-identical across runs");
    for doc in [&rec1, &rep1] {
        let j = codec::Json::parse(doc).expect("valid JSON");
        assert_eq!(doc, &j.to_canonical_string(), "canonical form");
        // "wall" names the clock *source* in the meta block; actual wall
        // time must never be serialized.
        assert!(
            !doc.contains("wall_time") && !doc.contains("time_ns"),
            "no timestamps in the deterministic payload"
        );
    }
}

/// The divergence report itself is deterministic JSON too.
#[test]
fn divergence_report_json_is_canonical() {
    let sym = SymmetryConfig::ablate(Ablation::LiveClock);
    for seed in 0..8u64 {
        let s = spec(seed).with_telemetry();
        let out = record_replay_forensic(&s, |_| {}, sym);
        let Some(report) = out.report else { continue };
        let doc = report.to_json().to_string();
        let j = codec::Json::parse(&doc).expect("valid JSON");
        assert_eq!(doc, j.to_canonical_string());
        return;
    }
    panic!("no divergence found to serialize");
}
