//! Record mode: Figure 2-(A) of the paper.
//!
//! At every counted yield point the recorder increments `nyp`; when the
//! hardware preempt bit is set it records the delta, resets the counter,
//! and requests the thread switch. Wall-clock reads and native-call
//! outcomes are captured into the data stream. Periodically the recorder
//! "flushes" its buffer by running the interpreted `sys$flushTrace` helper
//! inside the guest — whose side effects (yield points, stack use, lazy
//! compilation, I/O-path touches) are exactly what the symmetry machinery
//! must mirror in replay mode.

use crate::symmetry::{SymmetryConfig, FLUSH_PERIOD, HELPER_HEADROOM, TRACE_BUFFER_WORDS};
use crate::trace::{DataRec, SwitchRec, Trace};
use djvm::hook::{ExecHook, YieldAction};
use djvm::vm::{RootHandle, Vm, VmStatus};
use djvm::{ArrKind, NativeId, NativeOutcome};

/// State shared by the record and replay hooks: the instrumentation's own
/// guest-visible footprint (buffer, helper cadence, symmetric init).
#[derive(Clone)]
pub(crate) struct InstrCommon {
    pub sym: SymmetryConfig,
    pub buffer: Option<RootHandle>,
    pub switches_since_flush: u32,
}

impl InstrCommon {
    pub fn new(sym: SymmetryConfig) -> Self {
        Self {
            sym,
            buffer: None,
            switches_since_flush: 0,
        }
    }

    /// Symmetric initialization (§2.4): identical in record and replay.
    pub fn init(&mut self, vm: &mut Vm) {
        if self.sym.preallocate_buffer {
            let buf = vm
                .alloc_array_public(ArrKind::Int, TRACE_BUFFER_WORDS)
                .expect("heap too small for instrumentation buffer");
            self.buffer = Some(vm.register_root(buf));
        }
        if self.sym.preload_compile {
            let b = vm.program.builtins;
            let flush_low = vm.program.method_id_by_name("sys$flushLow");
            vm.ensure_method_compiled(b.flush_method).expect("preload");
            if let Some(fl) = flush_low {
                vm.ensure_method_compiled(fl).expect("preload");
            }
            vm.ensure_method_compiled(b.fill_method).expect("preload");
        }
        if self.sym.warmup_io {
            // The write-then-read warm-up file: forces both the output and
            // the input path to be initialized in both modes.
            vm.io_write_touch().expect("warmup");
            vm.io_read_touch().expect("warmup");
        }
    }

    /// Decide whether this preemptive switch also runs the flush/fill
    /// helper, performing the eager-stack-growth symmetry first.
    pub fn helper_due(&mut self, vm: &mut Vm, is_record: bool) -> Option<(djvm::MethodId, i64)> {
        self.switches_since_flush += 1;
        if self.switches_since_flush < FLUSH_PERIOD {
            return None;
        }
        self.switches_since_flush = 0;
        if self.sym.eager_stack_growth {
            if let Err(e) = vm.ensure_stack_headroom(HELPER_HEADROOM) {
                vm.status = VmStatus::Error(e);
                return None;
            }
        }
        let b = vm.program.builtins;
        if is_record {
            // A naive recorder allocates its buffer lazily, on first use —
            // an allocation replay will never perform (the ablation).
            if self.buffer.is_none() && !self.sym.preallocate_buffer {
                match vm.alloc_array_public(ArrKind::Int, TRACE_BUFFER_WORDS) {
                    Ok(buf) => self.buffer = Some(vm.register_root(buf)),
                    Err(e) => {
                        vm.status = VmStatus::Error(e);
                        return None;
                    }
                }
            }
            if let Err(e) = vm.io_write_touch() {
                vm.status = VmStatus::Error(e);
                return None;
            }
            Some((b.flush_method, 1))
        } else {
            if let Err(e) = vm.io_read_touch() {
                vm.status = VmStatus::Error(e);
                return None;
            }
            Some((b.fill_method, 1))
        }
    }

    /// Guest-visible buffer write/read at a switch (contents are
    /// instrumentation state and excluded from the state digest).
    pub fn touch_buffer(&self, vm: &mut Vm, idx: u64, value: u64, write: bool) {
        if let Some(h) = self.buffer {
            let buf = vm.root(h);
            let len = vm.heap.array_len(buf) as u64;
            let i = (idx % len) as usize;
            if write {
                vm.heap.set_elem(buf, i, value);
            } else {
                let _ = vm.heap.get_elem(buf, i);
            }
        }
    }
}

/// The record-mode hook (Fig. 2-A).
pub struct DejaVuRecorder {
    common: InstrCommon,
    /// Yield points since the last preemptive switch (the logical clock
    /// delta of Fig. 2).
    nyp: u64,
    total_switch_index: u64,
    paranoid: bool,
    trace: Trace,
}

impl DejaVuRecorder {
    pub fn new(sym: SymmetryConfig, paranoid: bool) -> Self {
        Self {
            common: InstrCommon::new(sym),
            nyp: 0,
            total_switch_index: 0,
            paranoid,
            trace: Trace {
                paranoid,
                ..Trace::default()
            },
        }
    }

    /// Extract the finished trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl ExecHook for DejaVuRecorder {
    fn on_init(&mut self, vm: &mut Vm) {
        self.common.init(vm);
    }

    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction {
        // Fig. 2-(A): liveClock is implicitly true here (instrumentation
        // yield points arrive via on_instr_yield_point instead).
        self.nyp += 1;
        if !vm.preempt_bit {
            return YieldAction::NONE;
        }
        vm.preempt_bit = false; // cleared by performThreadSwitch during record
        self.trace.switches.push(SwitchRec {
            nyp: self.nyp,
            check_tid: if self.paranoid {
                vm.sched.current
            } else {
                u32::MAX
            },
        });
        self.common
            .touch_buffer(vm, self.total_switch_index, self.nyp, true);
        self.total_switch_index += 1;
        self.nyp = 0;
        let run_helper = self.common.helper_due(vm, true);
        YieldAction {
            switch_now: true,
            run_helper,
        }
    }

    fn on_instr_yield_point(&mut self, _vm: &mut Vm) -> YieldAction {
        // liveClock == false: the yield point is not counted. The ablated
        // variant (live_clock off) counts it — breaking replay, since the
        // replay-side helper executes a different number of yield points.
        if !self.common.sym.live_clock {
            self.nyp += 1;
        }
        YieldAction::NONE
    }

    fn quiet_yield_horizon(&self, vm: &Vm) -> u64 {
        // Like passthrough, recording switches only on the hardware preempt
        // bit; in a tick-free window every consult just advances `nyp`.
        if vm.preempt_bit {
            0
        } else {
            u64::MAX
        }
    }

    fn on_yield_points_skipped(&mut self, k: u64) {
        // Batched yield points still tick the logical clock (Fig. 2's
        // delta): the recorded trace must not depend on the execution tier.
        self.nyp += k;
    }

    fn on_clock_read(&mut self, vm: &mut Vm) -> i64 {
        let v = vm.read_live_clock();
        self.trace.data.push(DataRec::Clock(v));
        v
    }

    fn on_native_call(&mut self, vm: &mut Vm, native: NativeId, args: &[i64]) -> NativeOutcome {
        let out = vm.call_native_live(native, args);
        self.trace.data.push(DataRec::Native {
            ret: out.ret,
            callbacks: out
                .callbacks
                .iter()
                .map(|c| (c.method, c.args.clone()))
                .collect(),
        });
        out
    }

    fn mode_name(&self) -> &'static str {
        "dejavu-record"
    }
}
