//! Replay mode: Figure 2-(B) of the paper.
//!
//! The replayer ignores the hardware preempt bit entirely. It counts down
//! the recorded yield-point delta and forces a thread switch when it
//! reaches zero; wall-clock reads and native calls are *not* performed —
//! their recorded out-states are regenerated (§2.1). Synchronization
//! switches, GC, allocation, class loading and the scheduler's queue
//! rotations need nothing at all: replaying the non-deterministic inputs
//! replays the whole thread package (§2.2).

use crate::record::InstrCommon;
use crate::symmetry::SymmetryConfig;
use crate::trace::{DataRec, SwitchRec, Trace};
use djvm::hook::{ExecHook, YieldAction};
use djvm::vm::Vm;
use djvm::{CallbackReq, NativeId, NativeOutcome};
use std::collections::VecDeque;

/// A detected record/replay desynchronization (diagnostics; an accurate
/// replay produces none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Desync {
    /// A forced switch fired while a different thread was running than
    /// during record (paranoid traces only).
    SwitchTidMismatch {
        switch_index: u64,
        recorded: u32,
        observed: u32,
    },
    /// Replay asked for a clock value but the data stream was exhausted or
    /// held a different event kind.
    ClockStream { reads_so_far: u64 },
    /// Replay reached a native call whose record is missing or mismatched.
    NativeStream { calls_so_far: u64 },
}

impl Desync {
    /// One-line human rendering naming the variant and every field.
    pub fn describe(&self) -> String {
        match self {
            Desync::SwitchTidMismatch {
                switch_index,
                recorded,
                observed,
            } => format!(
                "SwitchTidMismatch {{ switch_index: {switch_index}, recorded: {recorded}, observed: {observed} }}"
            ),
            Desync::ClockStream { reads_so_far } => {
                format!("ClockStream {{ reads_so_far: {reads_so_far} }}")
            }
            Desync::NativeStream { calls_so_far } => {
                format!("NativeStream {{ calls_so_far: {calls_so_far} }}")
            }
        }
    }

    /// Deterministic JSON (keys pre-sorted within each shape).
    pub fn to_json(&self) -> codec::Json {
        use codec::Json;
        match *self {
            Desync::SwitchTidMismatch {
                switch_index,
                recorded,
                observed,
            } => Json::obj(vec![
                ("kind", Json::Str("switch_tid_mismatch".into())),
                ("observed", Json::UInt(observed as u64)),
                ("recorded", Json::UInt(recorded as u64)),
                ("switch_index", Json::UInt(switch_index)),
            ]),
            Desync::ClockStream { reads_so_far } => Json::obj(vec![
                ("kind", Json::Str("clock_stream".into())),
                ("reads_so_far", Json::UInt(reads_so_far)),
            ]),
            Desync::NativeStream { calls_so_far } => Json::obj(vec![
                ("calls_so_far", Json::UInt(calls_so_far)),
                ("kind", Json::Str("native_stream".into())),
            ]),
        }
    }
}

/// The current countdown: remaining yield points plus the tid recorded for
/// validation.
#[derive(Debug, Clone, Copy)]
struct Pending {
    remaining: u64,
    check_tid: u32,
}

/// The replay-mode hook (Fig. 2-B).
#[derive(Clone)]
pub struct DejaVuReplayer {
    common: InstrCommon,
    switches: VecDeque<SwitchRec>,
    data: VecDeque<DataRec>,
    paranoid: bool,
    /// Countdown to the next forced switch (`None` = switch stream done).
    pending: Option<Pending>,
    switch_index: u64,
    clock_reads: u64,
    native_calls: u64,
    desyncs: Vec<Desync>,
}

impl DejaVuReplayer {
    pub fn new(trace: Trace, sym: SymmetryConfig) -> Self {
        let paranoid = trace.paranoid;
        let mut switches: VecDeque<SwitchRec> = trace.switches.into();
        let pending = switches.pop_front().map(|s| Pending {
            remaining: s.nyp,
            check_tid: s.check_tid,
        });
        Self {
            common: InstrCommon::new(sym),
            switches,
            data: trace.data.into(),
            paranoid,
            pending,
            switch_index: 0,
            clock_reads: 0,
            native_calls: 0,
            desyncs: Vec::new(),
        }
    }

    /// Desyncs observed so far (empty for an accurate replay).
    pub fn desyncs(&self) -> &[Desync] {
        &self.desyncs
    }

    pub fn into_desyncs(self) -> Vec<Desync> {
        self.desyncs
    }

    /// Total trace events this replayer has consumed so far (switch
    /// records + clock reads + native calls). The time-travel layer uses
    /// the delta across a seek to report how much of the trace a seek
    /// actually replayed.
    pub fn events_consumed(&self) -> u64 {
        self.switch_index + self.clock_reads + self.native_calls
    }
}

impl ExecHook for DejaVuReplayer {
    fn on_init(&mut self, vm: &mut Vm) {
        self.common.init(vm);
    }

    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction {
        // Fig. 2-(B): the preempt bit is ignored during replay.
        let Some(p) = self.pending.as_mut() else {
            return YieldAction::NONE;
        };
        p.remaining -= 1;
        if p.remaining > 0 {
            return YieldAction::NONE;
        }
        // The recorded delta expired: this is the yield point at which the
        // recorded execution performed its preemptive switch.
        if self.paranoid && p.check_tid != u32::MAX && p.check_tid != vm.sched.current {
            self.desyncs.push(Desync::SwitchTidMismatch {
                switch_index: self.switch_index,
                recorded: p.check_tid,
                observed: vm.sched.current,
            });
        }
        self.common.touch_buffer(vm, self.switch_index, 0, false);
        self.switch_index += 1;
        self.pending = self.switches.pop_front().map(|s: SwitchRec| Pending {
            remaining: s.nyp,
            check_tid: s.check_tid,
        });
        let run_helper = self.common.helper_due(vm, false);
        YieldAction {
            switch_now: true,
            run_helper,
        }
    }

    fn on_instr_yield_point(&mut self, _vm: &mut Vm) -> YieldAction {
        if !self.common.sym.live_clock {
            // Ablated liveClock: instrumentation yield points erroneously
            // tick the logical clock, desynchronizing it from the record
            // (the fill helper executes a different number of yield points
            // than the flush helper did).
            if let Some(p) = self.pending.as_mut() {
                p.remaining = p.remaining.saturating_sub(1).max(1);
            }
        }
        YieldAction::NONE
    }

    fn quiet_yield_horizon(&self, _vm: &Vm) -> u64 {
        // The consult that brings `remaining` to zero forces the recorded
        // switch, so exactly `remaining - 1` consults ahead are quiet. With
        // the switch stream exhausted, every remaining consult is a no-op.
        match self.pending.as_ref() {
            Some(p) => p.remaining.saturating_sub(1),
            None => u64::MAX,
        }
    }

    fn on_yield_points_skipped(&mut self, k: u64) {
        // Count down the recorded delta for yield points the tier-2 engine
        // batched; `k` is bounded by the horizon, so this never crosses 0.
        if let Some(p) = self.pending.as_mut() {
            p.remaining -= k;
        }
    }

    fn on_clock_read(&mut self, _vm: &mut Vm) -> i64 {
        self.clock_reads += 1;
        match self.data.pop_front() {
            Some(DataRec::Clock(v)) => v,
            other => {
                if let Some(rec) = other {
                    self.data.push_front(rec);
                }
                self.desyncs.push(Desync::ClockStream {
                    reads_so_far: self.clock_reads,
                });
                0
            }
        }
    }

    fn on_native_call(&mut self, _vm: &mut Vm, _native: NativeId, _args: &[i64]) -> NativeOutcome {
        // The native is NOT executed: its recorded out-state is
        // regenerated (§2.5).
        self.native_calls += 1;
        match self.data.pop_front() {
            Some(DataRec::Native { ret, callbacks }) => NativeOutcome {
                ret,
                callbacks: callbacks
                    .into_iter()
                    .map(|(method, args)| CallbackReq { method, args })
                    .collect(),
            },
            other => {
                if let Some(rec) = other {
                    self.data.push_front(rec);
                }
                self.desyncs.push(Desync::NativeStream {
                    calls_so_far: self.native_calls,
                });
                NativeOutcome::value(0)
            }
        }
    }

    fn mode_name(&self) -> &'static str {
        "dejavu-replay"
    }
}
