//! The block-structured trace format: delta-encoded, compressed,
//! checkpoint-indexable storage for DejaVu traces.
//!
//! The flat format ([`Trace::encoded`]) writes one unindexed event
//! stream; navigating to a logical time means replaying from zero. This
//! module makes the trace a first-class storage layer (rr's lesson:
//! trace compactness and cheap navigation are what make record/replay
//! deployable):
//!
//! * events are grouped into fixed-budget **blocks**;
//! * within a block, fields are stored **columnar** and
//!   **frame-of-reference** encoded: the block minimum is subtracted
//!   from the nyp column (the recorded deltas of the logical clock) and
//!   the thread-id column, wall-clock reads are **delta + zigzag**
//!   encoded, and the small residues are written as varints — the flat
//!   format's multi-byte absolute fields shrink to mostly one byte;
//! * each raw block payload is then handed to whichever in-repo
//!   compressor ([`codec::block`]) wins on that block — the LZ
//!   matcher or the adaptive order-1 range coder, which squeezes the
//!   low-entropy residue bytes below the varint's 8-bit floor — and
//!   guarded by a CRC-32, so a truncated or bit-flipped tail is
//!   detected, not silently replayed;
//! * a **footer index** carries every block's
//!   `{offset, first_seq, first_logical_time, event_count, …}` so a
//!   reader seeks to the block covering a logical time in O(log blocks)
//!   without touching the payloads before it.
//!
//! `first_logical_time` is the cumulative yield-point clock (the sum of
//! recorded `nyp` deltas) before the block's first event — the same
//! logical clock `vm.counters.yield_points` tracks during replay, which
//! is what lets the debugger key its checkpoint cache by block boundary
//! ([`baselines`]' `TimeTravel`).
//!
//! ## File layout
//!
//! ```text
//! "DJVB" ver=1 paranoid  varint(budget)
//! block*:  varint×7 header (first_seq, first_logical_time, event_count,
//!          switch_count, raw_len, comp_len, crc32)   payload[comp_len]
//!          (comp_len == raw_len ⇒ payload stored raw; otherwise the
//!          payload is method_byte(1=LZ, 2=range coder) + stream)
//! footer:  varint(block_count)
//!          block_count × (varint offset + the 7 header varints again)
//! tail:    u32le(footer_len) "DJVI"
//! ```
//!
//! The canonical unified event order is *switches first, then data
//! records* — the two streams of [`Trace`] back to back. Replay consumes
//! the streams independently, so the unified order is a storage choice;
//! columnar-by-stream maximizes intra-block self-similarity.
//!
//! Every decode path returns a typed [`TraceError`] — corruption is
//! never a panic.

use crate::trace::{DataRec, SwitchRec, Trace};
use codec::{get_varint, put_varint, unzigzag, zigzag};
use djvm::MethodId;
use std::fmt;

const BLOCK_MAGIC: &[u8; 4] = b"DJVB";
const INDEX_MAGIC: &[u8; 4] = b"DJVI";
const VERSION: u8 = 1;
/// Events per block unless the caller chooses otherwise. Small enough
/// that a seek decodes little, large enough that the compressor sees
/// real runs.
pub const DEFAULT_BLOCK_BUDGET: u32 = 4096;
/// Upper bound on a single block's raw payload (decoder allocation cap).
const MAX_RAW_LEN: u64 = 1 << 26;

/// On-disk trace encodings the platform understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The legacy single-stream varint format (`DJV1`).
    Flat,
    /// The block-structured compressed format (`DJVB`).
    Block,
}

impl TraceFormat {
    pub fn name(&self) -> &'static str {
        match self {
            TraceFormat::Flat => "flat",
            TraceFormat::Block => "block",
        }
    }

    /// Parse a `--trace-format` value.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "flat" => Some(TraceFormat::Flat),
            "block" => Some(TraceFormat::Block),
            _ => None,
        }
    }
}

/// Which compressor a block's on-disk payload went through — `Stored`
/// when neither compressor paid for itself. The store's catalog records
/// this per block so [`assemble_block_file`] can re-emit the exact
/// original payload bytes (both compressors are deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockMethod {
    Stored,
    Lz77,
    Range,
}

impl BlockMethod {
    pub fn name(&self) -> &'static str {
        match self {
            BlockMethod::Stored => "stored",
            BlockMethod::Lz77 => "lz77",
            BlockMethod::Range => "range",
        }
    }

    /// Stable numeric code (store catalog + tier byte). `Stored` is 0;
    /// 1 and 2 match the DJVB in-payload method byte.
    pub fn code(&self) -> u8 {
        match self {
            BlockMethod::Stored => 0,
            BlockMethod::Lz77 => 1,
            BlockMethod::Range => 2,
        }
    }

    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(BlockMethod::Stored),
            1 => Some(BlockMethod::Lz77),
            2 => Some(BlockMethod::Range),
            _ => None,
        }
    }
}

/// Why a trace file was rejected. Typed — decode never panics on
/// hostile bytes, and callers can distinguish I/O-grade corruption from
/// an unknown format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Neither magic matched: not a trace file at all.
    NotATrace,
    /// A `DJVB` file with a version this build does not speak.
    UnsupportedVersion(u8),
    /// Structural corruption (truncation, bad counts, bad offsets).
    Corrupt(&'static str),
    /// Block payload failed its CRC — a damaged or truncated tail.
    BadCrc { block: usize },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NotATrace => write!(f, "not a trace file (unknown magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported block-trace version {v}")
            }
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::BadCrc { block } => {
                write!(
                    f,
                    "block {block}: payload CRC mismatch (damaged or truncated)"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One entry of the footer index: everything needed to locate, validate
/// and decode a block without reading any other block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Byte offset of the block *header* within the file.
    pub offset: u64,
    /// Index of the block's first event in the unified stream.
    pub first_seq: u64,
    /// Cumulative logical clock (sum of nyp deltas) before this block.
    pub first_logical_time: u64,
    pub event_count: u32,
    /// How many of the events are switch records (the rest are data).
    pub switch_count: u32,
    pub raw_len: u32,
    /// `comp_len == raw_len` means the payload is stored uncompressed.
    pub comp_len: u32,
    /// CRC-32 of the raw (uncompressed) payload.
    pub crc: u32,
}

impl BlockInfo {
    fn put(&self, out: &mut Vec<u8>, with_offset: bool) {
        if with_offset {
            put_varint(out, self.offset);
        }
        put_varint(out, self.first_seq);
        put_varint(out, self.first_logical_time);
        put_varint(out, self.event_count as u64);
        put_varint(out, self.switch_count as u64);
        put_varint(out, self.raw_len as u64);
        put_varint(out, self.comp_len as u64);
        put_varint(out, self.crc as u64);
    }

    fn get(buf: &[u8], pos: &mut usize, offset: Option<u64>) -> Result<Self, TraceError> {
        let mut next = || get_varint(buf, pos).ok_or(TraceError::Corrupt("short block header"));
        let offset = match offset {
            Some(o) => o,
            None => next()?,
        };
        let first_seq = next()?;
        let first_logical_time = next()?;
        let event_count = next()?;
        let switch_count = next()?;
        let raw_len = next()?;
        let comp_len = next()?;
        let crc = next()?;
        if crc > u32::MAX as u64 {
            return Err(TraceError::Corrupt("implausible block crc"));
        }
        // The encoder stores the raw payload whenever compression does
        // not shrink it, so `comp_len <= raw_len` always.
        if raw_len > MAX_RAW_LEN || comp_len > raw_len {
            return Err(TraceError::Corrupt("implausible block payload length"));
        }
        if switch_count > event_count || event_count > u32::MAX as u64 {
            return Err(TraceError::Corrupt("implausible block event counts"));
        }
        Ok(BlockInfo {
            offset,
            first_seq,
            first_logical_time,
            event_count: event_count as u32,
            switch_count: switch_count as u32,
            raw_len: raw_len as u32,
            comp_len: comp_len as u32,
            crc: crc as u32,
        })
    }
}

/// Size accounting for one encoded block trace — the numbers E16 and the
/// per-block telemetry counters report.
#[derive(Debug, Clone, Default)]
pub struct BlockStats {
    pub blocks: usize,
    /// Blocks whose payload was stored raw (compression didn't pay).
    pub stored_blocks: usize,
    pub events: u64,
    pub switch_events: u64,
    pub data_events: u64,
    /// Whole-file size, headers/index/magic included.
    pub file_bytes: usize,
    /// Sum of raw (pre-compression) payload bytes.
    pub payload_raw_bytes: usize,
    /// Sum of on-disk payload bytes.
    pub payload_comp_bytes: usize,
    /// Per-block `comp*1000/raw` — the telemetry counters the observer
    /// exposes (integer permille keeps JSON byte-deterministic).
    pub per_block_permille: Vec<u64>,
}

impl BlockStats {
    /// Whole-payload compression ratio in permille (1000 = incompressible).
    pub fn compression_permille(&self) -> u64 {
        if self.payload_raw_bytes == 0 {
            return 1000;
        }
        (self.payload_comp_bytes as u64 * 1000) / self.payload_raw_bytes as u64
    }

    /// File bytes per event, ×1000 (exact integer milli-bytes).
    pub fn milli_bytes_per_event(&self) -> u64 {
        if self.events == 0 {
            return 0;
        }
        self.file_bytes as u64 * 1000 / self.events
    }

    /// Deterministic JSON (keys pre-sorted).
    pub fn to_json(&self) -> codec::Json {
        use codec::Json;
        Json::obj(vec![
            ("blocks", Json::UInt(self.blocks as u64)),
            (
                "compression_permille",
                Json::UInt(self.compression_permille()),
            ),
            ("data_events", Json::UInt(self.data_events)),
            ("events", Json::UInt(self.events)),
            ("file_bytes", Json::UInt(self.file_bytes as u64)),
            (
                "milli_bytes_per_event",
                Json::UInt(self.milli_bytes_per_event()),
            ),
            (
                "payload_comp_bytes",
                Json::UInt(self.payload_comp_bytes as u64),
            ),
            (
                "payload_raw_bytes",
                Json::UInt(self.payload_raw_bytes as u64),
            ),
            (
                "per_block_permille",
                Json::Arr(
                    self.per_block_permille
                        .iter()
                        .map(|&p| Json::UInt(p))
                        .collect(),
                ),
            ),
            ("stored_blocks", Json::UInt(self.stored_blocks as u64)),
            ("switch_events", Json::UInt(self.switch_events)),
        ])
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Append a *frame-of-reference* column: `varint(min)` followed by
/// `varint(value - min)` for each value. The recorded nyp deltas and the
/// zigzagged clock deltas live in a narrow band, so the residues are
/// almost always single bytes — and being byte-aligned, they are exactly
/// what the order-1 range coder models best, pushing the column to its
/// actual entropy. This is the main lever behind the bytes/event win
/// over the flat format.
fn put_for_column(out: &mut Vec<u8>, values: &[u64]) {
    let Some(&min) = values.iter().min() else {
        return;
    };
    put_varint(out, min);
    for &v in values {
        put_varint(out, v - min);
    }
}

/// Read back a [`put_for_column`] column of `n` values. A well-formed
/// column stores residues `v - min`, so `min + delta` can never exceed
/// `u64::MAX`; on a crafted column it can, and the reconstruction must
/// surface [`TraceError::Corrupt`] rather than wrap or panic.
fn get_for_column(raw: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u64>, TraceError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let min = get_varint(raw, pos).ok_or(TraceError::Corrupt("short frame-of-reference column"))?;
    let mut vals = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let delta =
            get_varint(raw, pos).ok_or(TraceError::Corrupt("short frame-of-reference column"))?;
        vals.push(min.checked_add(delta).ok_or(TraceError::Corrupt(
            "frame-of-reference column overflows u64",
        ))?);
    }
    Ok(vals)
}

/// Encode one block's events into its raw (pre-compression) payload.
/// Columnar: switch nyp deltas (already deltas of the logical clock),
/// then (paranoid) tids, then data tags, then clock-read deltas, then
/// native records. The numeric columns are frame-of-reference encoded
/// ([`put_for_column`]); all references are block-local so every block
/// decodes independently.
fn encode_block_payload(switches: &[SwitchRec], data: &[DataRec], paranoid: bool) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, switches.len() as u64);
    let nyps: Vec<u64> = switches.iter().map(|s| s.nyp).collect();
    put_for_column(&mut out, &nyps);
    if paranoid {
        let tids: Vec<u64> = switches.iter().map(|s| s.check_tid as u64).collect();
        put_for_column(&mut out, &tids);
    }
    put_varint(&mut out, data.len() as u64);
    for d in data {
        out.push(match d {
            DataRec::Clock(_) => 0,
            DataRec::Native { .. } => 1,
        });
    }
    let mut prev_clock = 0i64;
    let clock_deltas: Vec<u64> = data
        .iter()
        .filter_map(|d| match d {
            DataRec::Clock(v) => {
                let zz = zigzag(v.wrapping_sub(prev_clock));
                prev_clock = *v;
                Some(zz)
            }
            DataRec::Native { .. } => None,
        })
        .collect();
    put_for_column(&mut out, &clock_deltas);
    for d in data {
        if let DataRec::Native { ret, callbacks } = d {
            put_varint(&mut out, zigzag(*ret));
            put_varint(&mut out, callbacks.len() as u64);
            for (m, args) in callbacks {
                put_varint(&mut out, *m as u64);
                put_varint(&mut out, args.len() as u64);
                for &a in args {
                    put_varint(&mut out, zigzag(a));
                }
            }
        }
    }
    out
}

fn decode_block_payload(
    raw: &[u8],
    info: &BlockInfo,
    paranoid: bool,
    block: usize,
) -> Result<(Vec<SwitchRec>, Vec<DataRec>), TraceError> {
    let corrupt = |what| TraceError::Corrupt(what);
    let _ = block;
    let mut pos = 0usize;
    // The in-payload counts are validated against the header (itself
    // sanity-checked in `BlockInfo::get`, where `switch_count <=
    // event_count <= u32::MAX`) *before* any cast or addition, so the
    // arithmetic below cannot overflow even on crafted inputs.
    let nswitch = get_varint(raw, &mut pos).ok_or(corrupt("short switch count"))?;
    if nswitch != info.switch_count as u64 {
        return Err(corrupt("switch count disagrees with index"));
    }
    let nswitch = nswitch as usize;
    let nyps = get_for_column(raw, &mut pos, nswitch)?;
    let tids: Vec<u32> = if paranoid {
        let vals = get_for_column(raw, &mut pos, nswitch)?;
        if vals.iter().any(|&v| v > u32::MAX as u64) {
            return Err(corrupt("tid column value out of range"));
        }
        vals.into_iter().map(|v| v as u32).collect()
    } else {
        Vec::new()
    };
    let switches: Vec<SwitchRec> = nyps
        .into_iter()
        .enumerate()
        .map(|(i, nyp)| SwitchRec {
            nyp,
            check_tid: if paranoid { tids[i] } else { u32::MAX },
        })
        .collect();
    let ndata = get_varint(raw, &mut pos).ok_or(corrupt("short data count"))?;
    if ndata != (info.event_count - info.switch_count) as u64 {
        return Err(corrupt("event count disagrees with index"));
    }
    let ndata = ndata as usize;
    if ndata > raw.len().saturating_sub(pos) {
        return Err(corrupt("short tag column"));
    }
    let tags = &raw[pos..pos + ndata];
    pos += ndata;
    if tags.iter().any(|&t| t > 1) {
        return Err(corrupt("unknown data tag"));
    }
    let nclock = tags.iter().filter(|&&t| t == 0).count();
    let mut clocks = Vec::with_capacity(nclock.min(1 << 20));
    let mut prev_clock = 0i64;
    for zz in get_for_column(raw, &mut pos, nclock)? {
        let v = prev_clock.wrapping_add(unzigzag(zz));
        clocks.push(v);
        prev_clock = v;
    }
    let mut natives = Vec::new();
    for _ in 0..tags.len() - nclock {
        let ret = unzigzag(get_varint(raw, &mut pos).ok_or(corrupt("short native ret"))?);
        let ncb = get_varint(raw, &mut pos).ok_or(corrupt("short callback count"))? as usize;
        let mut callbacks = Vec::with_capacity(ncb.min(1 << 16));
        for _ in 0..ncb {
            let m = get_varint(raw, &mut pos).ok_or(corrupt("short callback method"))? as MethodId;
            let nargs = get_varint(raw, &mut pos).ok_or(corrupt("short arg count"))? as usize;
            let mut args = Vec::with_capacity(nargs.min(1 << 16));
            for _ in 0..nargs {
                args.push(unzigzag(
                    get_varint(raw, &mut pos).ok_or(corrupt("short callback arg"))?,
                ));
            }
            callbacks.push((m, args));
        }
        natives.push(DataRec::Native { ret, callbacks });
    }
    if pos != raw.len() {
        return Err(corrupt("trailing bytes in block payload"));
    }
    // Reassemble the data stream in tag order. The per-kind counts above
    // were derived from the tag column itself, so a disagreement here is
    // unreachable today — but it stays a typed error, not a panic, so a
    // future refactor (or a crafted payload that survives the CRC) can
    // never turn the decode path into a crash.
    let mut clocks = clocks.into_iter();
    let mut natives = natives.into_iter();
    let mut data = Vec::with_capacity(tags.len());
    for &t in tags {
        let rec = if t == 0 {
            clocks.next().map(DataRec::Clock)
        } else {
            natives.next()
        };
        data.push(rec.ok_or(corrupt("tag column disagrees with record columns"))?);
    }
    Ok((switches, data))
}

/// Encode `trace` in the block format with `budget` events per block.
pub fn encode_block(trace: &Trace, budget: u32) -> Vec<u8> {
    let budget = budget.max(1) as usize;
    let mut out = Vec::new();
    out.extend_from_slice(BLOCK_MAGIC);
    out.push(VERSION);
    out.push(trace.paranoid as u8);
    put_varint(&mut out, budget as u64);

    let nswitch = trace.switches.len();
    let total = nswitch + trace.data.len();
    let mut index: Vec<BlockInfo> = Vec::new();
    let mut logical = 0u64; // cumulative nyp before the next block
    let mut seq = 0usize;
    while seq < total {
        let count = budget.min(total - seq);
        let sw_lo = seq.min(nswitch);
        let sw_hi = (seq + count).min(nswitch);
        let da_lo = seq.saturating_sub(nswitch);
        let da_hi = (seq + count).saturating_sub(nswitch);
        let switches = &trace.switches[sw_lo..sw_hi];
        let data = &trace.data[da_lo..da_hi];
        let raw = encode_block_payload(switches, data, trace.paranoid);
        let raw_len = raw.len();
        let crc = codec::crc32(&raw);
        // Race the two compressors and store the winner behind a method
        // byte; `comp_len == raw_len` marks "stored raw" (no method byte).
        let lz = codec::compress(&raw);
        let rc = codec::entropy_compress(&raw);
        let (method, stream) = if rc.len() < lz.len() {
            (2u8, rc)
        } else {
            (1u8, lz)
        };
        let payload = if stream.len() + 1 < raw.len() {
            let mut p = Vec::with_capacity(stream.len() + 1);
            p.push(method);
            p.extend_from_slice(&stream);
            p
        } else {
            raw
        };
        let comp_len = payload.len();
        let info = BlockInfo {
            offset: out.len() as u64,
            first_seq: seq as u64,
            first_logical_time: logical,
            event_count: count as u32,
            switch_count: switches.len() as u32,
            raw_len: raw_len as u32,
            comp_len: comp_len as u32,
            crc,
        };
        info.put(&mut out, false);
        out.extend_from_slice(&payload);
        // Saturating: keeps the index monotone even for adversarial nyp
        // values near u64::MAX (seek just lands in the last such block).
        logical = switches
            .iter()
            .fold(logical, |acc, s| acc.saturating_add(s.nyp));
        index.push(info);
        seq += count;
    }

    // Footer index + fixed tail.
    let footer_start = out.len();
    put_varint(&mut out, index.len() as u64);
    for info in &index {
        info.put(&mut out, true);
    }
    let footer_len = (out.len() - footer_start) as u32;
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(INDEX_MAGIC);
    out
}

/// Encode `trace` in the chosen format (`budget` applies to `Block`).
pub fn encode_trace(trace: &Trace, format: TraceFormat, budget: u32) -> Vec<u8> {
    match format {
        TraceFormat::Flat => trace.encoded(),
        TraceFormat::Block => encode_block(trace, budget),
    }
}

/// Decode one block's **raw payload bytes** into events without a
/// surrounding file — the store's read path, where a block arrives from
/// the shared database rather than a DJVB file. The counts come from the
/// store's catalog and are validated against the payload exactly as the
/// in-file path does.
pub fn decode_block_events(
    raw: &[u8],
    event_count: u32,
    switch_count: u32,
    paranoid: bool,
) -> Result<(Vec<SwitchRec>, Vec<DataRec>), TraceError> {
    if switch_count > event_count {
        return Err(TraceError::Corrupt("implausible block event counts"));
    }
    if raw.len() as u64 > MAX_RAW_LEN {
        return Err(TraceError::Corrupt("implausible block payload length"));
    }
    let info = BlockInfo {
        offset: 0,
        first_seq: 0,
        first_logical_time: 0,
        event_count,
        switch_count,
        raw_len: raw.len() as u32,
        comp_len: raw.len() as u32,
        crc: 0, // payload integrity is the caller's contract here
    };
    decode_block_payload(raw, &info, paranoid, 0)
}

/// One block's identity: the fields the store's catalog records per
/// block reference, plus the raw payload. [`assemble_block_file`] turns
/// a sequence of these back into the exact original DJVB bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawBlock {
    /// Cumulative logical clock before the block's first event.
    pub first_logical_time: u64,
    pub event_count: u32,
    pub switch_count: u32,
    /// The compressor that won this block's encode-time race.
    pub method: BlockMethod,
    /// Raw (pre-compression) payload bytes — the dedup identity.
    pub raw: Vec<u8>,
}

/// Reassemble a DJVB file from raw blocks, re-running each block's
/// original compressor. Because both compressors are deterministic pure
/// functions and every header field is recomputed exactly as
/// [`encode_block`] computes it, the output is byte-identical to the
/// file the blocks were deconstructed from ([`BlockFile::raw_blocks`]) —
/// the property that lets `store get` satisfy a binary `cmp` against the
/// originally ingested file.
pub fn assemble_block_file(paranoid: bool, budget: u32, blocks: &[RawBlock]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(BLOCK_MAGIC);
    out.push(VERSION);
    out.push(paranoid as u8);
    put_varint(&mut out, budget.max(1) as u64);

    let mut index: Vec<BlockInfo> = Vec::new();
    let mut seq = 0u64;
    for b in blocks {
        let crc = codec::crc32(&b.raw);
        let payload = match b.method {
            BlockMethod::Stored => b.raw.clone(),
            BlockMethod::Lz77 | BlockMethod::Range => {
                let stream = match b.method {
                    BlockMethod::Lz77 => codec::compress(&b.raw),
                    _ => codec::entropy_compress(&b.raw),
                };
                let mut p = Vec::with_capacity(stream.len() + 1);
                p.push(b.method.code());
                p.extend_from_slice(&stream);
                p
            }
        };
        let info = BlockInfo {
            offset: out.len() as u64,
            first_seq: seq,
            first_logical_time: b.first_logical_time,
            event_count: b.event_count,
            switch_count: b.switch_count,
            raw_len: b.raw.len() as u32,
            comp_len: payload.len() as u32,
            crc,
        };
        info.put(&mut out, false);
        out.extend_from_slice(&payload);
        index.push(info);
        seq += b.event_count as u64;
    }

    let footer_start = out.len();
    put_varint(&mut out, index.len() as u64);
    for info in &index {
        info.put(&mut out, true);
    }
    let footer_len = (out.len() - footer_start) as u32;
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(INDEX_MAGIC);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A parsed block-format trace: the footer index plus the raw file
/// bytes. Individual blocks decode on demand ([`BlockFile::block`]).
#[derive(Debug, Clone)]
pub struct BlockFile {
    pub paranoid: bool,
    pub budget: u32,
    pub index: Vec<BlockInfo>,
    buf: Vec<u8>,
}

impl BlockFile {
    /// Parse the header and footer index. Block payloads are *not*
    /// validated here — use [`BlockFile::block`] / [`BlockFile::verify`].
    pub fn parse(buf: Vec<u8>) -> Result<Self, TraceError> {
        if buf.len() < 6 || &buf[..4] != BLOCK_MAGIC {
            return Err(TraceError::NotATrace);
        }
        if buf[4] != VERSION {
            return Err(TraceError::UnsupportedVersion(buf[4]));
        }
        let paranoid = buf[5] != 0;
        let mut pos = 6;
        let budget = get_varint(&buf, &mut pos).ok_or(TraceError::Corrupt("short header"))?;
        if budget == 0 || budget > u32::MAX as u64 {
            return Err(TraceError::Corrupt("bad block budget"));
        }
        let blocks_start = pos;
        if buf.len() < blocks_start + 8 {
            return Err(TraceError::Corrupt("missing footer"));
        }
        if &buf[buf.len() - 4..] != INDEX_MAGIC {
            return Err(TraceError::Corrupt("missing index magic (truncated tail)"));
        }
        let tail: [u8; 4] = buf[buf.len() - 8..buf.len() - 4]
            .try_into()
            .map_err(|_| TraceError::Corrupt("missing footer"))?;
        let flen = u32::from_le_bytes(tail) as usize;
        let footer_end = buf.len() - 8;
        let footer_start = footer_end
            .checked_sub(flen)
            .filter(|&s| s >= blocks_start)
            .ok_or(TraceError::Corrupt("bad footer length"))?;
        let footer = &buf[..footer_end];
        let mut fpos = footer_start;
        let count =
            get_varint(footer, &mut fpos).ok_or(TraceError::Corrupt("short index count"))? as usize;
        if count > (footer_end - footer_start).max(1) {
            return Err(TraceError::Corrupt("implausible index count"));
        }
        let mut index = Vec::with_capacity(count.min(1 << 20));
        let mut expect_seq = 0u64;
        let mut prev_logical = 0u64;
        for i in 0..count {
            let info = BlockInfo::get(footer, &mut fpos, None)?;
            if info.first_seq != expect_seq {
                return Err(TraceError::Corrupt("index seq discontinuity"));
            }
            if info.first_logical_time < prev_logical {
                return Err(TraceError::Corrupt("index logical time not monotone"));
            }
            if info.event_count == 0 && count > 1 {
                return Err(TraceError::Corrupt("empty block in multi-block file"));
            }
            let off = info.offset as usize;
            if off < blocks_start || off >= footer_start {
                return Err(TraceError::Corrupt("block offset outside payload region"));
            }
            let _ = i;
            expect_seq += info.event_count as u64;
            prev_logical = info.first_logical_time;
            index.push(info);
        }
        if fpos != footer_end {
            return Err(TraceError::Corrupt("trailing bytes in index"));
        }
        Ok(BlockFile {
            paranoid,
            budget: budget as u32,
            index,
            buf,
        })
    }

    /// Total events across all blocks.
    pub fn event_count(&self) -> u64 {
        self.index.iter().map(|b| b.event_count as u64).sum()
    }

    /// Decode block `i`'s **raw (pre-compression) payload bytes**:
    /// locate via the index, revalidate the in-line header, decompress,
    /// and CRC-check. These bytes are the block's content-addressed
    /// identity — the store keys dedup on their digest.
    pub fn block_raw(&self, i: usize) -> Result<Vec<u8>, TraceError> {
        let info = *self
            .index
            .get(i)
            .ok_or(TraceError::Corrupt("block index out of range"))?;
        // Re-read the in-line header so a block is self-validating even
        // when reached through the index.
        let mut pos = info.offset as usize;
        let inline = BlockInfo::get(&self.buf, &mut pos, Some(info.offset))?;
        if inline != info {
            return Err(TraceError::Corrupt(
                "index and in-line block header disagree",
            ));
        }
        let end = pos
            .checked_add(info.comp_len as usize)
            .filter(|&e| e <= self.buf.len())
            .ok_or(TraceError::Corrupt("block payload out of range"))?;
        let payload = &self.buf[pos..end];
        let raw = if info.comp_len == info.raw_len {
            payload.to_vec()
        } else {
            let (&method, stream) = payload
                .split_first()
                .ok_or(TraceError::Corrupt("empty compressed payload"))?;
            match method {
                1 => codec::decompress(stream, info.raw_len as usize),
                2 => codec::entropy_decompress(stream, info.raw_len as usize),
                _ => return Err(TraceError::Corrupt("unknown compression method")),
            }
            .ok_or(TraceError::BadCrc { block: i })?
        };
        if codec::crc32(&raw) != info.crc {
            return Err(TraceError::BadCrc { block: i });
        }
        Ok(raw)
    }

    /// Decode block `i`: decompress, CRC-check, and expand the columns.
    pub fn block(&self, i: usize) -> Result<(Vec<SwitchRec>, Vec<DataRec>), TraceError> {
        let info = *self
            .index
            .get(i)
            .ok_or(TraceError::Corrupt("block index out of range"))?;
        let raw = self.block_raw(i)?;
        decode_block_payload(&raw, &info, self.paranoid, i)
    }

    /// Validate every block's CRC; `Ok` only if all pass.
    pub fn verify(&self) -> Result<(), TraceError> {
        for i in 0..self.index.len() {
            self.block(i)?;
        }
        Ok(())
    }

    /// Per-block CRC status without failing fast (the `trace inspect`
    /// view).
    pub fn crc_status(&self) -> Vec<bool> {
        (0..self.index.len())
            .map(|i| self.block(i).is_ok())
            .collect()
    }

    /// Which compressor won block `i`'s encode-time race. Errors on an
    /// out-of-range index or an unknown method byte (corrupt file).
    pub fn block_method(&self, i: usize) -> Result<BlockMethod, TraceError> {
        let info = *self
            .index
            .get(i)
            .ok_or(TraceError::Corrupt("block index out of range"))?;
        if info.comp_len == info.raw_len {
            return Ok(BlockMethod::Stored);
        }
        let mut pos = info.offset as usize;
        BlockInfo::get(&self.buf, &mut pos, Some(info.offset))?;
        match self.buf.get(pos) {
            Some(1) => Ok(BlockMethod::Lz77),
            Some(2) => Ok(BlockMethod::Range),
            _ => Err(TraceError::Corrupt("unknown compression method")),
        }
    }

    /// [`BlockFile::block_method`] as the display name `trace inspect`
    /// prints: `"stored"`, `"lz77"`, or `"range"`.
    pub fn block_compressor(&self, i: usize) -> Result<&'static str, TraceError> {
        self.block_method(i).map(|m| m.name())
    }

    /// Deconstruct the file into its [`RawBlock`]s — everything the
    /// store's catalog needs to reassemble the exact original bytes via
    /// [`assemble_block_file`].
    pub fn raw_blocks(&self) -> Result<Vec<RawBlock>, TraceError> {
        (0..self.index.len())
            .map(|i| {
                Ok(RawBlock {
                    first_logical_time: self.index[i].first_logical_time,
                    event_count: self.index[i].event_count,
                    switch_count: self.index[i].switch_count,
                    method: self.block_method(i)?,
                    raw: self.block_raw(i)?,
                })
            })
            .collect()
    }

    /// Reassemble the full in-memory [`Trace`].
    pub fn to_trace(&self) -> Result<Trace, TraceError> {
        let mut trace = Trace {
            paranoid: self.paranoid,
            ..Trace::default()
        };
        for i in 0..self.index.len() {
            let (mut sw, mut da) = self.block(i)?;
            // Canonical unified order is switches-first; a file whose
            // switch records resume after data records is malformed.
            if !sw.is_empty() && !trace.data.is_empty() {
                return Err(TraceError::Corrupt("switch events after data events"));
            }
            trace.switches.append(&mut sw);
            trace.data.append(&mut da);
        }
        Ok(trace)
    }

    /// Index of the block covering logical time `t` (the block a seek to
    /// `t` must decode). Blocks cover `(first_logical_time, next block's
    /// first_logical_time]`; `t == 0` maps to block 0.
    pub fn block_for_logical_time(&self, t: u64) -> usize {
        self.index
            .partition_point(|b| b.first_logical_time < t)
            .saturating_sub(1)
    }

    /// `first_logical_time` of every block — the checkpoint-keying
    /// boundaries the time-travel layer snapshots at.
    pub fn boundaries(&self) -> Vec<u64> {
        self.index.iter().map(|b| b.first_logical_time).collect()
    }

    /// Size accounting over the parsed file.
    pub fn stats(&self) -> BlockStats {
        let mut s = BlockStats {
            blocks: self.index.len(),
            file_bytes: self.buf.len(),
            ..BlockStats::default()
        };
        for b in &self.index {
            s.events += b.event_count as u64;
            s.switch_events += b.switch_count as u64;
            s.payload_raw_bytes += b.raw_len as usize;
            s.payload_comp_bytes += b.comp_len as usize;
            if b.comp_len == b.raw_len {
                s.stored_blocks += 1;
            }
            s.per_block_permille.push(if b.raw_len == 0 {
                1000
            } else {
                b.comp_len as u64 * 1000 / b.raw_len as u64
            });
        }
        s.data_events = s.events - s.switch_events;
        s
    }
}

// ---------------------------------------------------------------------
// Format sniffing
// ---------------------------------------------------------------------

/// Identify the on-disk format from the leading magic.
pub fn sniff_format(buf: &[u8]) -> Result<TraceFormat, TraceError> {
    if buf.len() >= 4 && &buf[..4] == b"DJV1" {
        Ok(TraceFormat::Flat)
    } else if buf.len() >= 4 && &buf[..4] == BLOCK_MAGIC {
        Ok(TraceFormat::Block)
    } else {
        Err(TraceError::NotATrace)
    }
}

/// Decode a trace in either format, reporting which one it was.
pub fn decode_any(buf: &[u8]) -> Result<(Trace, TraceFormat), TraceError> {
    match sniff_format(buf)? {
        TraceFormat::Flat => Trace::decode(buf)
            .map(|t| (t, TraceFormat::Flat))
            .ok_or(TraceError::Corrupt("flat trace rejected by decoder")),
        TraceFormat::Block => {
            let bf = BlockFile::parse(buf.to_vec())?;
            Ok((bf.to_trace()?, TraceFormat::Block))
        }
    }
}

// ---------------------------------------------------------------------
// Streaming ingest (the session-safe upload path)
// ---------------------------------------------------------------------

/// A fully ingested trace: decoded events plus the checkpoint boundaries
/// a block-format upload carries in its footer index (empty for flat).
#[derive(Debug, Clone)]
pub struct IngestedTrace {
    pub trace: Trace,
    pub boundaries: Vec<u64>,
    pub format: TraceFormat,
}

/// Streaming trace ingest: accumulate serialized trace bytes chunk by
/// chunk (a fleet session's `IngestBlocks` upload), then decode once the
/// stream is complete. Every failure is a typed [`TraceError`] — a
/// hostile or truncated upload must never panic the hosting server, and
/// the size ceiling bounds what one session can make the server buffer.
#[derive(Debug)]
pub struct TraceIngest {
    buf: Vec<u8>,
    limit: usize,
}

/// Default per-session ingest ceiling (64 MiB — two orders of magnitude
/// above the largest corpus trace).
pub const DEFAULT_INGEST_LIMIT: usize = 64 << 20;

impl TraceIngest {
    pub fn new() -> Self {
        Self::with_limit(DEFAULT_INGEST_LIMIT)
    }

    pub fn with_limit(limit: usize) -> Self {
        Self {
            buf: Vec::new(),
            limit,
        }
    }

    /// Append one chunk; returns the total bytes buffered so far.
    pub fn push(&mut self, chunk: &[u8]) -> Result<u64, TraceError> {
        if self.buf.len().saturating_add(chunk.len()) > self.limit {
            return Err(TraceError::Corrupt("ingest exceeds the size ceiling"));
        }
        self.buf.extend_from_slice(chunk);
        Ok(self.buf.len() as u64)
    }

    pub fn bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// The bytes buffered so far — the exact upload, pre-decode.
    pub fn peek(&self) -> &[u8] {
        &self.buf
    }

    /// Decode the accumulated bytes in whichever on-disk format they
    /// carry. Block uploads keep their footer index as seek boundaries.
    pub fn finish(self) -> Result<IngestedTrace, TraceError> {
        ingest_bytes(self.buf)
    }
}

impl Default for TraceIngest {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot form of [`TraceIngest`]: decode serialized trace bytes into
/// an [`IngestedTrace`]. This is the single ingest path every session
/// host (debugger tier, fleet tier) shares, so "corrupt bytes produce a
/// typed error, never a panic" is proven in one place.
pub fn ingest_bytes(bytes: Vec<u8>) -> Result<IngestedTrace, TraceError> {
    match sniff_format(&bytes)? {
        TraceFormat::Flat => {
            let trace = Trace::decode(&bytes)
                .ok_or(TraceError::Corrupt("flat trace rejected by decoder"))?;
            Ok(IngestedTrace {
                trace,
                boundaries: Vec::new(),
                format: TraceFormat::Flat,
            })
        }
        TraceFormat::Block => {
            let bf = BlockFile::parse(bytes)?;
            let boundaries = bf.boundaries();
            let trace = bf.to_trace()?;
            Ok(IngestedTrace {
                trace,
                boundaries,
                format: TraceFormat::Block,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(paranoid: bool, n: usize) -> Trace {
        let mut t = Trace {
            paranoid,
            ..Trace::default()
        };
        for i in 0..n {
            t.switches.push(SwitchRec {
                nyp: 200 + (i as u64 % 17),
                check_tid: if paranoid { (i % 3) as u32 } else { u32::MAX },
            });
        }
        for i in 0..n {
            if i % 5 == 4 {
                t.data.push(DataRec::Native {
                    ret: -(i as i64),
                    callbacks: vec![(3, vec![1, 2, i as i64]), (9, vec![])],
                });
            } else {
                t.data.push(DataRec::Clock(1_000_000 + 2 * i as i64));
            }
        }
        t
    }

    #[test]
    fn roundtrip_various_budgets() {
        for paranoid in [false, true] {
            let t = sample(paranoid, 137);
            for budget in [1u32, 2, 7, 64, 512, 100_000] {
                let enc = encode_block(&t, budget);
                let bf = BlockFile::parse(enc.clone()).unwrap();
                assert_eq!(bf.to_trace().unwrap(), t, "budget {budget}");
                let (t2, f) = decode_any(&enc).unwrap();
                assert_eq!(f, TraceFormat::Block);
                assert_eq!(t2, t);
            }
        }
    }

    #[test]
    fn roundtrip_empty_trace_has_zero_blocks() {
        let enc = encode_block(&Trace::default(), 512);
        let bf = BlockFile::parse(enc).unwrap();
        assert_eq!(bf.index.len(), 0);
        assert_eq!(bf.to_trace().unwrap(), Trace::default());
        assert_eq!(bf.stats().compression_permille(), 1000);
    }

    #[test]
    fn roundtrip_single_event_blocks() {
        let mut t = Trace::default();
        t.data.push(DataRec::Clock(i64::MIN));
        let enc = encode_block(&t, 1);
        let bf = BlockFile::parse(enc).unwrap();
        assert_eq!(bf.index.len(), 1);
        assert_eq!(bf.index[0].event_count, 1);
        assert_eq!(bf.to_trace().unwrap(), t);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let t = Trace {
            paranoid: true,
            switches: vec![
                SwitchRec {
                    nyp: u64::MAX,
                    check_tid: u32::MAX,
                },
                SwitchRec {
                    nyp: 1,
                    check_tid: 0,
                },
            ],
            data: vec![DataRec::Clock(i64::MIN), DataRec::Clock(i64::MAX)],
        };
        for budget in [1, 2, 4] {
            let enc = encode_block(&t, budget);
            assert_eq!(BlockFile::parse(enc).unwrap().to_trace().unwrap(), t);
        }
    }

    #[test]
    fn index_carries_logical_time() {
        let t = sample(false, 100);
        let enc = encode_block(&t, 10);
        let bf = BlockFile::parse(enc).unwrap();
        // 100 switches + 100 data in blocks of 10 → 20 blocks
        assert_eq!(bf.index.len(), 20);
        assert_eq!(bf.index[0].first_logical_time, 0);
        let cum: u64 = t.switches[..10].iter().map(|s| s.nyp).sum();
        assert_eq!(bf.index[1].first_logical_time, cum);
        // data-only blocks keep the final logical time
        let total: u64 = t.switches.iter().map(|s| s.nyp).sum();
        assert_eq!(bf.index[19].first_logical_time, total);
        // lookup: time 1 is inside block 0; cum+1 inside block 1
        assert_eq!(bf.block_for_logical_time(0), 0);
        assert_eq!(bf.block_for_logical_time(1), 0);
        assert_eq!(bf.block_for_logical_time(cum), 0);
        assert_eq!(bf.block_for_logical_time(cum + 1), 1);
        assert_eq!(bf.boundaries().len(), 20);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let t = sample(true, 64);
        let enc = encode_block(&t, 16);
        for cut in 1..enc.len() {
            let short = &enc[..enc.len() - cut];
            match sniff_format(short) {
                Ok(TraceFormat::Block) => {
                    let r = BlockFile::parse(short.to_vec()).and_then(|bf| bf.to_trace());
                    assert!(r.is_err(), "accepted a {}-byte truncation", cut);
                }
                _ => {} // shorter than the magic — trivially rejected
            }
        }
    }

    #[test]
    fn payload_bitflip_caught_by_crc() {
        let t = sample(false, 64);
        let enc = encode_block(&t, 64);
        let bf = BlockFile::parse(enc.clone()).unwrap();
        // Flip one byte inside the first block's payload (which starts
        // right after its in-line header).
        let mut pos = bf.index[0].offset as usize;
        BlockInfo::get(&enc, &mut pos, Some(bf.index[0].offset)).unwrap();
        let mut bad = enc.clone();
        bad[pos] ^= 0x40;
        let bfbad = BlockFile::parse(bad).unwrap();
        match bfbad.block(0) {
            Err(TraceError::BadCrc { block: 0 }) | Err(TraceError::Corrupt(_)) => {}
            other => panic!("bitflip not caught: {other:?}"),
        }
        assert!(bfbad.verify().is_err());
        assert_eq!(bfbad.crc_status()[0], false);
    }

    /// Build a structurally valid single-block file around an arbitrary
    /// raw payload — the attacker's toolkit: the CRC is honest, so only
    /// the payload-decode layer stands between the bytes and the caller.
    fn handcrafted_block_file(payload: &[u8], event_count: u32, switch_count: u32) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BLOCK_MAGIC);
        out.push(VERSION);
        out.push(0); // not paranoid
        put_varint(&mut out, 4096);
        let info = BlockInfo {
            offset: out.len() as u64,
            first_seq: 0,
            first_logical_time: 0,
            event_count,
            switch_count,
            raw_len: payload.len() as u32,
            comp_len: payload.len() as u32,
            crc: codec::crc32(payload),
        };
        info.put(&mut out, false);
        out.extend_from_slice(payload);
        let footer_start = out.len();
        put_varint(&mut out, 1);
        info.put(&mut out, true);
        let footer_len = (out.len() - footer_start) as u32;
        out.extend_from_slice(&footer_len.to_le_bytes());
        out.extend_from_slice(INDEX_MAGIC);
        out
    }

    #[test]
    fn crafted_overflowing_column_is_corrupt_not_panic() {
        // A frame-of-reference column whose min + residue overflows u64:
        // count 1, min u64::MAX, residue 1. Rebuilding the value must be
        // a typed Corrupt, never a wrap (release) or panic (debug).
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // switch count
        put_varint(&mut payload, u64::MAX); // column min
        put_varint(&mut payload, 1); // residue -> overflow
        put_varint(&mut payload, 0); // data count
        let bf = BlockFile::parse(handcrafted_block_file(&payload, 1, 1)).unwrap();
        assert_eq!(
            bf.block(0).unwrap_err(),
            TraceError::Corrupt("frame-of-reference column overflows u64")
        );
        assert!(matches!(bf.to_trace(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn crafted_count_disagreements_are_corrupt_not_panic() {
        // Payload switch count disagrees with the (CRC-honest) header.
        let mut p1 = Vec::new();
        put_varint(&mut p1, 2); // header says 1
        let bf = BlockFile::parse(handcrafted_block_file(&p1, 1, 1)).unwrap();
        assert!(matches!(bf.block(0), Err(TraceError::Corrupt(_))));
        // Payload data count disagrees with event_count - switch_count.
        let mut p2 = Vec::new();
        put_varint(&mut p2, 0); // switch count (matches)
        put_varint(&mut p2, 7); // data count: header implies 1
        let bf = BlockFile::parse(handcrafted_block_file(&p2, 1, 0)).unwrap();
        assert!(matches!(bf.block(0), Err(TraceError::Corrupt(_))));
        // Huge counts that would overflow a naive `nswitch + ndata` sum
        // are rejected against the header before any arithmetic.
        let mut p3 = Vec::new();
        put_varint(&mut p3, u64::MAX);
        let bf = BlockFile::parse(handcrafted_block_file(&p3, 1, 1)).unwrap();
        assert!(matches!(bf.block(0), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn crafted_short_columns_are_corrupt_not_panic() {
        // Clock column shorter than its tag count: tags say 2 clock reads,
        // column holds none.
        let mut p = Vec::new();
        put_varint(&mut p, 0); // switches
        put_varint(&mut p, 2); // data count
        p.push(0); // tag: clock
        p.push(0); // tag: clock
                   // no clock column at all
        let bf = BlockFile::parse(handcrafted_block_file(&p, 2, 0)).unwrap();
        assert_eq!(
            bf.block(0).unwrap_err(),
            TraceError::Corrupt("short frame-of-reference column")
        );
    }

    #[test]
    fn not_a_trace_rejected_typed() {
        assert_eq!(sniff_format(b"XXXXXX"), Err(TraceError::NotATrace));
        assert_eq!(decode_any(b"").unwrap_err(), TraceError::NotATrace);
        let mut bad = encode_block(&sample(false, 4), 2);
        bad[4] = 9; // unsupported version
        assert_eq!(
            BlockFile::parse(bad).unwrap_err(),
            TraceError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn decode_any_reads_flat_too() {
        let t = sample(true, 8);
        let (t2, f) = decode_any(&t.encoded()).unwrap();
        assert_eq!(f, TraceFormat::Flat);
        assert_eq!(t2, t);
    }

    #[test]
    fn block_format_beats_flat_on_regular_streams() {
        // The compression claim in miniature: periodic nyp deltas +
        // near-linear clock reads.
        let t = sample(true, 4_000);
        let flat = t.encoded().len();
        let block = encode_block(&t, DEFAULT_BLOCK_BUDGET).len();
        assert!(
            block * 3 <= flat,
            "block {block} bytes vs flat {flat} bytes — expected ≥3×"
        );
        let bf = BlockFile::parse(encode_block(&t, DEFAULT_BLOCK_BUDGET)).unwrap();
        let s = bf.stats();
        assert_eq!(s.events, 8_000);
        assert!(s.compression_permille() < 1000);
        assert_eq!(s.per_block_permille.len(), s.blocks);
        assert!(codec::Json::parse(&s.to_json().to_string()).is_ok());
    }

    #[test]
    fn block_compressor_names_the_winner() {
        let t = sample(true, 4_000);
        let bf = BlockFile::parse(encode_block(&t, DEFAULT_BLOCK_BUDGET)).unwrap();
        for (i, b) in bf.index.iter().enumerate() {
            let name = bf.block_compressor(i).unwrap();
            if b.comp_len == b.raw_len {
                assert_eq!(name, "stored");
            } else {
                assert!(name == "lz77" || name == "range", "block {i}: {name}");
            }
        }
        // A regular stream must have at least one genuinely compressed block.
        assert!(
            (0..bf.index.len()).any(|i| bf.block_compressor(i).unwrap() != "stored"),
            "all blocks stored raw"
        );
        assert!(bf.block_compressor(bf.index.len()).is_err(), "out of range");
    }

    #[test]
    fn deconstruct_assemble_is_byte_identical() {
        for paranoid in [false, true] {
            let t = sample(paranoid, 700);
            for budget in [1u32, 7, 64, DEFAULT_BLOCK_BUDGET] {
                let enc = encode_block(&t, budget);
                let bf = BlockFile::parse(enc.clone()).unwrap();
                let blocks = bf.raw_blocks().unwrap();
                let back = assemble_block_file(bf.paranoid, bf.budget, &blocks);
                assert_eq!(back, enc, "paranoid={paranoid} budget={budget}");
            }
        }
        // Empty trace: zero blocks still reassembles exactly.
        let enc = encode_block(&Trace::default(), 512);
        let bf = BlockFile::parse(enc.clone()).unwrap();
        assert_eq!(
            assemble_block_file(bf.paranoid, bf.budget, &bf.raw_blocks().unwrap()),
            enc
        );
    }

    #[test]
    fn block_raw_and_decode_block_events_match_block() {
        let t = sample(true, 300);
        let bf = BlockFile::parse(encode_block(&t, 32)).unwrap();
        for i in 0..bf.index.len() {
            let raw = bf.block_raw(i).unwrap();
            assert_eq!(codec::crc32(&raw), bf.index[i].crc);
            let via_raw = decode_block_events(
                &raw,
                bf.index[i].event_count,
                bf.index[i].switch_count,
                bf.paranoid,
            )
            .unwrap();
            assert_eq!(via_raw, bf.block(i).unwrap());
        }
        // Count/paranoid contract violations are typed errors.
        let raw = bf.block_raw(0).unwrap();
        assert!(decode_block_events(&raw, 1, 2, true).is_err());
        assert!(decode_block_events(&raw, bf.index[0].event_count, 0, bf.paranoid).is_err());
    }

    #[test]
    fn block_method_codes_roundtrip() {
        for m in [BlockMethod::Stored, BlockMethod::Lz77, BlockMethod::Range] {
            assert_eq!(BlockMethod::from_code(m.code()), Some(m));
        }
        assert_eq!(BlockMethod::from_code(3), None);
        let bf = BlockFile::parse(encode_block(&sample(true, 2_000), 256)).unwrap();
        for i in 0..bf.index.len() {
            assert_eq!(
                bf.block_method(i).unwrap().name(),
                bf.block_compressor(i).unwrap()
            );
        }
    }

    #[test]
    fn stats_json_deterministic() {
        let t = sample(false, 50);
        let bf = BlockFile::parse(encode_block(&t, 8)).unwrap();
        let a = bf.stats().to_json().to_string();
        let b = bf.stats().to_json().to_canonical_string();
        assert_eq!(a, b, "keys pre-sorted");
    }

    #[test]
    fn chunked_ingest_matches_one_shot_decode() {
        let t = sample(true, 500);
        for format in [TraceFormat::Flat, TraceFormat::Block] {
            let bytes = encode_trace(&t, format, 64);
            // Stream in uneven chunks, as a TCP upload would arrive.
            let mut ingest = TraceIngest::new();
            for chunk in bytes.chunks(13) {
                ingest.push(chunk).unwrap();
            }
            assert_eq!(ingest.bytes(), bytes.len() as u64);
            let got = ingest.finish().unwrap();
            assert_eq!(got.format, format);
            assert_eq!(got.trace, t);
            let direct = ingest_bytes(bytes).unwrap();
            assert_eq!(direct.boundaries, got.boundaries);
            if format == TraceFormat::Block {
                assert!(!got.boundaries.is_empty(), "block footer keys checkpoints");
            } else {
                assert!(got.boundaries.is_empty());
            }
        }
    }

    #[test]
    fn ingest_rejects_oversize_and_garbage_with_typed_errors() {
        let mut small = TraceIngest::with_limit(8);
        assert!(small.push(&[0u8; 6]).is_ok());
        assert!(matches!(small.push(&[0u8; 6]), Err(TraceError::Corrupt(_))));
        assert!(matches!(
            ingest_bytes(b"not a trace".to_vec()),
            Err(TraceError::NotATrace)
        ));
        // Truncated block file: typed error, never a panic.
        let bytes = encode_trace(&sample(true, 200), TraceFormat::Block, 32);
        assert!(ingest_bytes(bytes[..40].to_vec()).is_err());
    }
}
