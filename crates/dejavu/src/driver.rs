//! Orchestration: build VMs, record executions, replay traces, and verify
//! accuracy by the paper's own criterion (identical event sequences and
//! identical program states — checked via execution fingerprints and
//! reachable-state digests).

use crate::observe::{DivergenceReport, PhaseSpan, RunTelemetry};
use crate::record::DejaVuRecorder;
use crate::replay::{DejaVuReplayer, Desync};
use crate::symmetry::SymmetryConfig;
use crate::trace::{Trace, TraceStats};
use djvm::clock::{CycleClock, JitteredClock, JitteredTimer};
use djvm::hook::Passthrough;
use djvm::vm::VmCounters;
use djvm::{interp, FingerprintMode, Program, Vm, VmConfig, VmStatus};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything needed to (re)construct an execution environment. The `seed`
/// selects one "physical machine behaviour": a timer-interrupt jitter
/// sequence and a wall-clock noise sequence. Different seeds model the
/// different executions a non-deterministic program exhibits in the wild.
#[derive(Debug, Clone)]
pub struct ExecSpec {
    pub program: Arc<Program>,
    pub vm: VmConfig,
    pub seed: u64,
    /// Mean cycles between preemption-timer interrupts.
    pub timer_base: u64,
    /// Max deviation from `timer_base`.
    pub timer_jitter: u64,
    /// Wall-clock origin (ms) and rate.
    pub clock_origin: i64,
    pub cycles_per_ms: u64,
    /// Max per-read wall-clock noise (ms).
    pub clock_noise: i64,
    /// Execution step budget (guards against runaway guests).
    pub max_steps: u64,
    /// Enable the observer-only telemetry sink on every VM this spec
    /// builds. Guaranteed perturbation-free: the sink lives outside the
    /// guest heap, the logical clock, the fingerprint, and the state
    /// digest (and the neutrality test suite proves it).
    pub telemetry: bool,
    /// Event-ring capacity when `telemetry` is on.
    pub telemetry_ring: usize,
    /// Arm the replay-time profiler (`telemetry::profile`) on every VM
    /// this spec builds. Like `telemetry`, a pure observer: fingerprints
    /// and state digests are bit-identical with it on or off.
    pub profile: bool,
}

impl ExecSpec {
    pub fn new(program: Program) -> Self {
        Self {
            program: Arc::new(program),
            vm: VmConfig::default(),
            seed: 1,
            timer_base: 200,
            timer_jitter: 60,
            clock_origin: 1_000_000,
            cycles_per_ms: 50,
            clock_noise: 3,
            max_steps: 200_000_000,
            telemetry: false,
            telemetry_ring: telemetry::DEFAULT_RING_CAP,
            profile: false,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turn telemetry on for every VM built from this spec.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Force quickened dispatch on or off for every VM built from this
    /// spec (the `DJVM_NO_QUICKEN` ablation as an API knob). Purely a
    /// speed setting: runs are bit-identical either way.
    pub fn with_quicken(mut self, quicken: bool) -> Self {
        self.vm.quicken = quicken;
        self
    }

    /// Arm the profiler for every VM built from this spec.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Select the fingerprint mode (default [`FingerprintMode::Full`],
    /// the strongest accuracy check; `Coarse` hashes scheduling and
    /// output only and is the cheap production setting the dispatch
    /// benches measure under).
    pub fn with_fingerprint(mut self, mode: FingerprintMode) -> Self {
        self.vm.fingerprint = mode;
        self
    }

    /// Force tier-2 megablock execution on or off for every VM built from
    /// this spec (the `DJVM_NO_MEGA` ablation as an API knob). Like
    /// quickening, purely a speed setting: runs are bit-identical either
    /// way. Megablocks additionally require quickening.
    pub fn with_mega(mut self, mega: bool) -> Self {
        self.vm.mega = mega;
        self
    }

    /// Inject a deopt at every `stride`-th megablock guard evaluation
    /// (0 disables). Forced deopts exit before the guarded step, so they
    /// are semantics-preserving — used by the neutrality test suite.
    pub fn with_mega_deopt_stride(mut self, stride: u64) -> Self {
        self.vm.mega_deopt_stride = stride;
        self
    }

    /// Force the guard with this per-iteration ordinal to always fail
    /// (`None` disables). Semantics-preserving like the stride knob.
    pub fn with_mega_deopt_guard(mut self, guard: Option<u32>) -> Self {
        self.vm.mega_deopt_guard = guard;
        self
    }

    fn finish_vm(&self, mut vm: Vm) -> Vm {
        if self.telemetry {
            vm.enable_telemetry(self.telemetry_ring);
        }
        // After enable_telemetry: enabling telemetry replaces the sink.
        if self.profile {
            vm.enable_profiler();
        }
        vm
    }

    fn build_live_vm(&self) -> Vm {
        self.finish_vm(
            Vm::boot(
                Arc::clone(&self.program),
                self.vm.clone(),
                Box::new(JitteredTimer::new(
                    self.seed,
                    self.timer_base,
                    self.timer_jitter,
                )),
                Box::new(JitteredClock::new(
                    self.seed,
                    self.clock_origin,
                    self.cycles_per_ms,
                    self.clock_noise,
                )),
            )
            .expect("boot failed"),
        )
    }

    fn build_replay_vm(&self) -> Vm {
        // Replay ignores both sources; deterministic stand-ins are used.
        self.finish_vm(
            Vm::boot(
                Arc::clone(&self.program),
                self.vm.clone(),
                Box::new(JitteredTimer::new(
                    self.seed,
                    self.timer_base,
                    self.timer_jitter,
                )),
                Box::new(CycleClock::new(self.clock_origin, self.cycles_per_ms)),
            )
            .expect("boot failed"),
        )
    }
}

/// The observable outcome of one run — everything the paper's definition
/// of "identical execution behaviour" quantifies over.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub status: VmStatus,
    pub output: String,
    /// Rolling event-sequence fingerprint.
    pub fingerprint: u64,
    /// Final reachable-program-state digest.
    pub state_digest: u64,
    pub counters: VmCounters,
    pub gc_collections: u64,
    pub cycles: u64,
    pub wall_time: Duration,
    /// Observer-side capture (`None` unless [`ExecSpec::telemetry`] was
    /// set). Deliberately excluded from [`RunReport::matches`]: the
    /// telemetry of a record run and its replay legitimately differ
    /// (different modes, clocks), while the guest-visible fields must not.
    pub telemetry: Option<Box<RunTelemetry>>,
    /// The profiler's flight-recorder log (`None` unless
    /// [`ExecSpec::profile`] was set). Excluded from [`RunReport::matches`]
    /// for the same reason as `telemetry`.
    pub profile: Option<Box<telemetry::Profiler>>,
    /// Tier-2 megablock runtime statistics. Observer state: entry and
    /// deopt counts legitimately differ between a record run and its
    /// replay (hook horizons differ), so — like `telemetry` — this is
    /// excluded from [`RunReport::matches`]. Tier-*up* counts, by
    /// contrast, are deterministic and surface in the event ring.
    pub mega: djvm::MegaStats,
}

impl RunReport {
    fn from_vm(
        vm: &mut Vm,
        wall_time: Duration,
        mode: &'static str,
        phases: Vec<PhaseSpan>,
    ) -> Self {
        Self {
            status: vm.status,
            output: vm.output.clone(),
            fingerprint: vm.fingerprint.digest(),
            state_digest: vm.state_digest(),
            counters: vm.counters,
            gc_collections: vm.heap.stats.collections,
            cycles: vm.cycles,
            wall_time,
            telemetry: RunTelemetry::capture(vm, mode, phases),
            profile: vm.telem.profile.take(),
            mega: vm.mega.stats,
        }
    }

    /// The paper's accuracy criterion: identical event sequence and
    /// identical program states (plus identical console output and
    /// termination status, which follow from those but are checked
    /// independently for diagnosability).
    pub fn matches(&self, other: &RunReport) -> bool {
        self.fingerprint == other.fingerprint
            && self.state_digest == other.state_digest
            && self.output == other.output
            && self.status == other.status
    }
}

/// Run uninstrumented (the precision baseline).
pub fn passthrough_run(spec: &ExecSpec, natives: impl FnOnce(&mut Vm)) -> RunReport {
    let mut vm = spec.build_live_vm();
    let boot = PhaseSpan::mark("boot", &vm);
    natives(&mut vm);
    let mut hook = Passthrough;
    let warmup = PhaseSpan::mark("warmup", &vm);
    let t0 = Instant::now();
    interp::run(&mut vm, &mut hook, spec.max_steps);
    let run = PhaseSpan::mark("passthrough", &vm);
    RunReport::from_vm(
        &mut vm,
        t0.elapsed(),
        "passthrough",
        vec![boot, warmup, run],
    )
}

/// Record an execution: returns the report and the DejaVu trace.
pub fn record_run(
    spec: &ExecSpec,
    natives: impl FnOnce(&mut Vm),
    sym: SymmetryConfig,
    paranoid: bool,
) -> (RunReport, Trace) {
    let mut vm = spec.build_live_vm();
    let boot = PhaseSpan::mark("boot", &vm);
    natives(&mut vm);
    let mut hook = DejaVuRecorder::new(sym, paranoid);
    hook.on_init_public(&mut vm);
    let warmup = PhaseSpan::mark("warmup", &vm);
    let t0 = Instant::now();
    interp::run(&mut vm, &mut hook, spec.max_steps);
    let run = PhaseSpan::mark("record", &vm);
    let report = RunReport::from_vm(&mut vm, t0.elapsed(), "record", vec![boot, warmup, run]);
    (report, hook.into_trace())
}

/// Replay a trace: natives are *not* registered — replay never calls them,
/// which is itself part of the determinism story (§2.5).
pub fn replay_run(spec: &ExecSpec, trace: Trace, sym: SymmetryConfig) -> (RunReport, Vec<Desync>) {
    let mut vm = spec.build_replay_vm();
    let boot = PhaseSpan::mark("boot", &vm);
    let mut hook = DejaVuReplayer::new(trace, sym);
    hook.on_init_public(&mut vm);
    let warmup = PhaseSpan::mark("warmup", &vm);
    let t0 = Instant::now();
    interp::run(&mut vm, &mut hook, spec.max_steps);
    let run = PhaseSpan::mark("replay", &vm);
    let report = RunReport::from_vm(&mut vm, t0.elapsed(), "replay", vec![boot, warmup, run]);
    (report, hook.into_desyncs())
}

/// Record then replay, returning both reports and whether replay was
/// accurate.
pub fn record_replay(
    spec: &ExecSpec,
    natives: impl FnOnce(&mut Vm),
    sym: SymmetryConfig,
) -> (RunReport, RunReport, bool) {
    let (rec, trace) = record_run(spec, natives, sym, true);
    let (rep, desyncs) = replay_run(spec, trace, sym);
    let ok = rec.matches(&rep) && desyncs.is_empty();
    (rec, rep, ok)
}

/// Everything [`record_replay_forensic`] produces: both reports, the
/// verdict, the replayer's own desyncs, trace-size accounting, and — when
/// the verdict is "diverged" — the aligned divergence report.
#[derive(Debug, Clone)]
pub struct ForensicOutcome {
    pub record: RunReport,
    pub replay: RunReport,
    pub accurate: bool,
    pub desyncs: Vec<Desync>,
    pub trace_stats: TraceStats,
    /// `Some` exactly when `!accurate`.
    pub report: Option<DivergenceReport>,
}

/// Record then replay with full diagnosis: on any inaccuracy the
/// record-side and replay-side event rings and counter snapshots are
/// aligned into a [`DivergenceReport`] localizing the first mismatched
/// event (its index and kind) and the per-thread logical-clock deltas.
pub fn record_replay_forensic(
    spec: &ExecSpec,
    natives: impl FnOnce(&mut Vm),
    sym: SymmetryConfig,
) -> ForensicOutcome {
    let (rec, trace) = record_run(spec, natives, sym, true);
    let trace_stats = trace.stats();
    let (rep, desyncs) = replay_run(spec, trace, sym);
    let accurate = rec.matches(&rep) && desyncs.is_empty();
    let report = (!accurate).then(|| DivergenceReport::build(&rec, &rep, desyncs.clone()));
    ForensicOutcome {
        record: rec,
        replay: rep,
        accurate,
        desyncs,
        trace_stats,
        report,
    }
}

/// Convenience used in assertions: full-fidelity fingerprinting.
pub fn full_fidelity(mut spec: ExecSpec) -> ExecSpec {
    spec.vm.fingerprint = FingerprintMode::Full;
    spec
}

// Allow the driver to call on_init without exposing ExecHook publicly odd.
impl DejaVuRecorder {
    pub fn on_init_public(&mut self, vm: &mut Vm) {
        use djvm::hook::ExecHook;
        self.on_init(vm);
    }
}

impl DejaVuReplayer {
    pub fn on_init_public(&mut self, vm: &mut Vm) {
        use djvm::hook::ExecHook;
        self.on_init(vm);
    }
}
