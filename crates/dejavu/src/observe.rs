//! Observer-side telemetry: per-run capture, deterministic metrics JSON,
//! and divergence forensics.
//!
//! Everything in this module reads VM state *after* (or outside of) guest
//! execution — it can never perturb a run. Two disciplines keep the
//! output byte-deterministic across identical runs:
//!
//! * every quantity is an exact integer in deterministic units (VM steps,
//!   cycles, words, logical-clock values) — wall time never enters the
//!   payload;
//! * every JSON object is emitted through [`codec::Json::canonicalize`],
//!   so keys are sorted regardless of assembly order.

use crate::driver::RunReport;
use crate::replay::Desync;
use crate::trace::TraceStats;
use codec::Json;
use djvm::sched::SchedPressure;
use djvm::vm::VmCounters;
use djvm::{Vm, VmStatus};
use telemetry::{first_mismatch, Event, Histogram, RingMismatch};

/// End-of-phase cumulative marks, in deterministic units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    pub name: &'static str,
    /// Interpreter steps executed by the end of this phase.
    pub steps: u64,
    /// VM cycles elapsed by the end of this phase.
    pub cycles: u64,
    /// Heap allocations performed by the end of this phase.
    pub allocations: u64,
}

impl PhaseSpan {
    /// Snapshot the phase boundary "now".
    pub fn mark(name: &'static str, vm: &Vm) -> Self {
        Self {
            name,
            steps: vm.counters.steps,
            cycles: vm.cycles,
            allocations: vm.heap.stats.allocations,
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("allocations", Json::UInt(self.allocations)),
            ("cycles", Json::UInt(self.cycles)),
            ("name", Json::Str(self.name.into())),
            ("steps", Json::UInt(self.steps)),
        ])
    }
}

/// Everything the telemetry layer captured from one finished run: the
/// event-ring window, the hot-path histograms, heap and scheduler
/// occupancy, per-thread logical clocks, and the phase spans.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// "record" | "replay" | "passthrough".
    pub mode: &'static str,
    pub timer: &'static str,
    pub wall: &'static str,
    pub ring_events: Vec<Event>,
    pub ring_dropped: u64,
    pub ring_next_seq: u64,
    pub ring_capacity: usize,
    pub timer_intervals: Histogram,
    pub alloc_words: Histogram,
    pub compile_words: Histogram,
    pub heap: djvm::heap::HeapStats,
    pub pressure: SchedPressure,
    /// `(tid, yield_points)` — each thread's final logical clock.
    pub thread_clocks: Vec<(u32, u64)>,
    pub phases: Vec<PhaseSpan>,
}

impl RunTelemetry {
    /// Capture the observer state of a finished run. Returns `None` when
    /// telemetry was not enabled on the VM.
    pub fn capture(vm: &mut Vm, mode: &'static str, phases: Vec<PhaseSpan>) -> Option<Box<Self>> {
        if !vm.telem.is_enabled() {
            return None;
        }
        // End-of-run occupancy sample (GC entry took the others).
        vm.heap.note_peak();
        Some(Box::new(Self {
            mode,
            timer: vm.timer.describe(),
            wall: vm.wall.describe(),
            ring_events: vm.telem.ring.events(),
            ring_dropped: vm.telem.ring.dropped(),
            ring_next_seq: vm.telem.ring.next_seq(),
            ring_capacity: vm.telem.ring.capacity(),
            timer_intervals: vm.telem.timer_intervals.clone(),
            alloc_words: vm.telem.alloc_words.clone(),
            compile_words: vm.telem.compile_words.clone(),
            heap: vm.heap.stats,
            pressure: vm.sched.pressure(),
            thread_clocks: vm.threads.iter().map(|t| (t.tid, t.yield_points)).collect(),
            phases,
        }))
    }

    pub fn to_json(&self) -> Json {
        let heap = Json::obj(vec![
            ("allocations", Json::UInt(self.heap.allocations)),
            ("collections", Json::UInt(self.heap.collections)),
            ("peak_words_in_use", Json::UInt(self.heap.peak_words_in_use)),
            ("words_allocated", Json::UInt(self.heap.words_allocated)),
            (
                "words_copied_or_swept",
                Json::UInt(self.heap.words_copied_or_swept),
            ),
        ]);
        let sched = Json::obj(vec![
            (
                "entry_blocked",
                Json::UInt(self.pressure.entry_blocked as u64),
            ),
            (
                "join_waiters",
                Json::UInt(self.pressure.join_waiters as u64),
            ),
            ("monitors", Json::UInt(self.pressure.monitors as u64)),
            ("ready", Json::UInt(self.pressure.ready as u64)),
            ("sleepers", Json::UInt(self.pressure.sleepers as u64)),
            ("waiting", Json::UInt(self.pressure.waiting as u64)),
        ]);
        let ring = Json::obj(vec![
            ("capacity", Json::UInt(self.ring_capacity as u64)),
            ("dropped", Json::UInt(self.ring_dropped)),
            (
                "events",
                Json::Arr(self.ring_events.iter().map(|e| e.to_json()).collect()),
            ),
            ("next_seq", Json::UInt(self.ring_next_seq)),
        ]);
        let histograms = Json::obj(vec![
            ("alloc_words", self.alloc_words.to_json()),
            ("compile_words", self.compile_words.to_json()),
            ("timer_intervals", self.timer_intervals.to_json()),
        ]);
        let threads = Json::Arr(
            self.thread_clocks
                .iter()
                .map(|&(tid, yp)| {
                    Json::obj(vec![
                        ("tid", Json::UInt(tid as u64)),
                        ("yield_points", Json::UInt(yp)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("heap", heap),
            ("histograms", histograms),
            (
                "meta",
                Json::obj(vec![
                    ("mode", Json::Str(self.mode.into())),
                    ("timer", Json::Str(self.timer.into())),
                    ("wall", Json::Str(self.wall.into())),
                ]),
            ),
            (
                "phases",
                Json::Arr(self.phases.iter().map(|p| p.to_json()).collect()),
            ),
            ("ring", ring),
            ("sched", sched),
            ("threads", threads),
        ])
    }
}

fn status_name(s: &VmStatus) -> &'static str {
    match s {
        VmStatus::Running => "running",
        VmStatus::Halted => "halted",
        VmStatus::Deadlocked => "deadlocked",
        VmStatus::Error(_) => "error",
    }
}

/// Deterministic JSON view of the VM's event counters (alphabetical keys).
pub fn counters_json(c: &VmCounters) -> Json {
    Json::obj(vec![
        ("class_loads", Json::UInt(c.class_loads)),
        ("clock_reads", Json::UInt(c.clock_reads)),
        ("io_reads", Json::UInt(c.io_reads)),
        ("io_writes", Json::UInt(c.io_writes)),
        ("methods_compiled", Json::UInt(c.methods_compiled)),
        ("native_calls", Json::UInt(c.native_calls)),
        ("preemptive_switches", Json::UInt(c.preemptive_switches)),
        ("stack_growths", Json::UInt(c.stack_growths)),
        ("steps", Json::UInt(c.steps)),
        ("thread_switches", Json::UInt(c.thread_switches)),
        ("yield_points", Json::UInt(c.yield_points)),
    ])
}

/// The canonical metrics document for one run. Byte-deterministic: no
/// wall time, no host state, keys sorted. `trace` is included when the
/// run produced (or consumed) a DejaVu trace.
pub fn run_metrics_json(report: &RunReport, trace: Option<&TraceStats>) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![
        ("counters", counters_json(&report.counters)),
        ("cycles", Json::UInt(report.cycles)),
        ("fingerprint", Json::UInt(report.fingerprint)),
        ("gc_collections", Json::UInt(report.gc_collections)),
        ("state_digest", Json::UInt(report.state_digest)),
        ("status", Json::Str(status_name(&report.status).into())),
        (
            "telemetry",
            report
                .telemetry
                .as_ref()
                .map(|t| t.to_json())
                .unwrap_or(Json::Null),
        ),
    ];
    if let Some(ts) = trace {
        pairs.push(("trace", ts.to_json()));
    }
    let mut j = Json::obj(pairs);
    j.canonicalize();
    j
}

// ---------------------------------------------------------------------
// Divergence forensics
// ---------------------------------------------------------------------

/// A thread whose final logical clock differs between record and replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadClockDelta {
    pub tid: u32,
    pub record_nyp: u64,
    pub replay_nyp: u64,
}

/// The structured first-divergence localization the tentpole promises:
/// built whenever replay was not accurate, from the two sides' event
/// rings, per-thread logical clocks, and counter snapshots.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Desyncs the replayer itself detected (stream exhaustion/mismatch).
    pub desyncs: Vec<Desync>,
    /// First event-ring position where the sides disagree.
    pub first: Option<RingMismatch>,
    /// Threads whose final logical clocks differ.
    pub thread_clock_deltas: Vec<ThreadClockDelta>,
    /// `(counter, record value, replay value)` for differing counters.
    pub counter_deltas: Vec<(&'static str, u64, u64)>,
    pub fingerprint_match: bool,
    pub state_digest_match: bool,
    pub output_match: bool,
    /// Events the record-side bounded ring discarded (ring wrapped). When
    /// nonzero, `first_divergence` localizes only within the retained
    /// window — the true first mismatch may predate it.
    pub record_ring_dropped: u64,
    /// Same, for the replay side.
    pub replay_ring_dropped: u64,
}

fn counter_pairs(c: &VmCounters) -> [(&'static str, u64); 11] {
    [
        ("class_loads", c.class_loads),
        ("clock_reads", c.clock_reads),
        ("io_reads", c.io_reads),
        ("io_writes", c.io_writes),
        ("methods_compiled", c.methods_compiled),
        ("native_calls", c.native_calls),
        ("preemptive_switches", c.preemptive_switches),
        ("stack_growths", c.stack_growths),
        ("steps", c.steps),
        ("thread_switches", c.thread_switches),
        ("yield_points", c.yield_points),
    ]
}

impl DivergenceReport {
    /// Align the two sides of a diverged record/replay pair.
    pub fn build(record: &RunReport, replay: &RunReport, desyncs: Vec<Desync>) -> Self {
        let first = match (&record.telemetry, &replay.telemetry) {
            (Some(a), Some(b)) => first_mismatch(&a.ring_events, &b.ring_events),
            _ => None,
        };
        let thread_clock_deltas = match (&record.telemetry, &replay.telemetry) {
            (Some(a), Some(b)) => {
                let mut out = Vec::new();
                let max = a.thread_clocks.len().max(b.thread_clocks.len());
                for i in 0..max {
                    let rec = a.thread_clocks.get(i).copied();
                    let rep = b.thread_clocks.get(i).copied();
                    let tid = rec.or(rep).map(|(t, _)| t).unwrap_or(i as u32);
                    let rec_nyp = rec.map(|(_, y)| y).unwrap_or(0);
                    let rep_nyp = rep.map(|(_, y)| y).unwrap_or(0);
                    if rec_nyp != rep_nyp {
                        out.push(ThreadClockDelta {
                            tid,
                            record_nyp: rec_nyp,
                            replay_nyp: rep_nyp,
                        });
                    }
                }
                out
            }
            _ => Vec::new(),
        };
        let counter_deltas = counter_pairs(&record.counters)
            .iter()
            .zip(counter_pairs(&replay.counters).iter())
            .filter(|((_, a), (_, b))| a != b)
            .map(|(&(name, a), &(_, b))| (name, a, b))
            .collect();
        Self {
            desyncs,
            first,
            thread_clock_deltas,
            counter_deltas,
            fingerprint_match: record.fingerprint == replay.fingerprint,
            state_digest_match: record.state_digest == replay.state_digest,
            output_match: record.output == replay.output,
            record_ring_dropped: record
                .telemetry
                .as_ref()
                .map(|t| t.ring_dropped)
                .unwrap_or(0),
            replay_ring_dropped: replay
                .telemetry
                .as_ref()
                .map(|t| t.ring_dropped)
                .unwrap_or(0),
        }
    }

    pub fn to_json(&self) -> Json {
        let deltas = Json::Arr(
            self.thread_clock_deltas
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("record_nyp", Json::UInt(d.record_nyp)),
                        ("replay_nyp", Json::UInt(d.replay_nyp)),
                        ("tid", Json::UInt(d.tid as u64)),
                    ])
                })
                .collect(),
        );
        let counters = Json::Arr(
            self.counter_deltas
                .iter()
                .map(|&(name, a, b)| {
                    Json::obj(vec![
                        ("counter", Json::Str(name.into())),
                        ("record", Json::UInt(a)),
                        ("replay", Json::UInt(b)),
                    ])
                })
                .collect(),
        );
        let mut j = Json::obj(vec![
            ("counter_deltas", counters),
            (
                "desyncs",
                Json::Arr(self.desyncs.iter().map(|d| d.to_json()).collect()),
            ),
            ("fingerprint_match", Json::Bool(self.fingerprint_match)),
            (
                "first_divergence",
                self.first
                    .as_ref()
                    .map(|m| m.to_json())
                    .unwrap_or(Json::Null),
            ),
            ("output_match", Json::Bool(self.output_match)),
            ("record_ring_dropped", Json::UInt(self.record_ring_dropped)),
            ("replay_ring_dropped", Json::UInt(self.replay_ring_dropped)),
            ("state_digest_match", Json::Bool(self.state_digest_match)),
            ("thread_clock_deltas", deltas),
        ]);
        j.canonicalize();
        j
    }

    /// Multi-line human rendering: names the first mismatched event's
    /// index and kind, then the supporting deltas.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        match &self.first {
            Some(m) => {
                out.push_str(&m.describe());
                out.push('\n');
            }
            None => out.push_str("first divergence: not localized (enable telemetry on both sides for ring alignment)\n"),
        }
        if self.record_ring_dropped > 0 || self.replay_ring_dropped > 0 {
            out.push_str(&format!(
                "event ring wrapped: record dropped {} event(s), replay dropped {} — \
                 localization covers only the retained window; the true first \
                 mismatch may be earlier (raise the ring capacity to widen it)\n",
                self.record_ring_dropped, self.replay_ring_dropped,
            ));
        }
        for d in &self.desyncs {
            out.push_str(&format!("desync: {}\n", d.describe()));
        }
        for d in &self.thread_clock_deltas {
            out.push_str(&format!(
                "thread {} logical clock: record nyp={} replay nyp={} (delta {})\n",
                d.tid,
                d.record_nyp,
                d.replay_nyp,
                d.record_nyp.abs_diff(d.replay_nyp),
            ));
        }
        for &(name, a, b) in &self.counter_deltas {
            out.push_str(&format!("counter {name}: record {a} replay {b}\n"));
        }
        out.push_str(&format!(
            "fingerprint match: {}; state digest match: {}; output match: {}",
            self.fingerprint_match, self.state_digest_match, self.output_match,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(fingerprint: u64, ring_dropped: u64) -> RunReport {
        RunReport {
            status: VmStatus::Halted,
            output: String::new(),
            fingerprint,
            state_digest: 0,
            counters: VmCounters::default(),
            gc_collections: 0,
            cycles: 0,
            wall_time: std::time::Duration::ZERO,
            telemetry: Some(Box::new(RunTelemetry {
                mode: "record",
                timer: "fixed",
                wall: "cycle",
                ring_events: Vec::new(),
                ring_dropped,
                ring_next_seq: ring_dropped,
                ring_capacity: 4,
                timer_intervals: Histogram::new(),
                alloc_words: Histogram::new(),
                compile_words: Histogram::new(),
                heap: Default::default(),
                pressure: Default::default(),
                thread_clocks: Vec::new(),
                phases: Vec::new(),
            })),
            profile: None,
            mega: Default::default(),
        }
    }

    #[test]
    fn divergence_report_states_when_ring_wrapped() {
        let rec = fake_report(1, 9);
        let rep = fake_report(2, 0);
        let r = DivergenceReport::build(&rec, &rep, Vec::new());
        assert_eq!(r.record_ring_dropped, 9);
        assert_eq!(r.replay_ring_dropped, 0);
        let text = r.describe();
        assert!(
            text.contains("event ring wrapped: record dropped 9"),
            "{text}"
        );
        let json = r.to_json().to_string();
        assert!(json.contains("\"record_ring_dropped\":9"), "{json}");
        assert!(json.contains("\"replay_ring_dropped\":0"), "{json}");
        // No wrap, no warning.
        let quiet = DivergenceReport::build(&fake_report(1, 0), &fake_report(2, 0), Vec::new());
        assert!(!quiet.describe().contains("ring wrapped"));
    }

    #[test]
    fn phase_span_json_shape() {
        let p = PhaseSpan {
            name: "boot",
            steps: 0,
            cycles: 0,
            allocations: 12,
        };
        let s = p.to_json().to_string();
        assert!(codec::Json::parse(&s).is_ok());
        assert!(s.contains("\"name\":\"boot\""));
    }
}
