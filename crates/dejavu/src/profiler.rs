//! Replay-side profile reports: the bridge between the raw
//! `telemetry::profile` flight-recorder log a run produced and the
//! artifacts a user consumes (Chrome trace JSON, folded flamegraph text,
//! a canonical-JSON summary).
//!
//! This module resolves what the telemetry crate deliberately cannot:
//! method ids to qualified names (via the [`Program`]) and QOp kind
//! indices to mnemonics (via `djvm::compile::QOP_KIND_NAMES`). The
//! fingerprint and state digest of the profiled run ride along so
//! callers — and `verify.sh` — can assert neutrality (profiled replay ==
//! unprofiled replay) without a second bookkeeping channel.

use crate::driver::{replay_run, ExecSpec, RunReport};
use crate::replay::Desync;
use crate::symmetry::SymmetryConfig;
use crate::trace::Trace;
use codec::Json;
use djvm::compile::QOP_KIND_NAMES;
use djvm::Program;
use telemetry::profile::{chrome_trace, folded_stacks, summary_json, ProfileModel, Profiler};

/// A fully resolved profile of one run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub profiler: Box<Profiler>,
    pub model: ProfileModel,
    /// Logical length of the run (cycles at the final state).
    pub final_cycles: u64,
    /// Qualified method names, indexed by `MethodId`.
    pub method_names: Vec<String>,
    /// The profiled run's guest-visible identity, for neutrality checks.
    pub fingerprint: u64,
    pub state_digest: u64,
}

impl ProfileReport {
    /// Resolve a run's profiler log against its program. `None` when the
    /// run was not profiled ([`ExecSpec::profile`] unset).
    pub fn from_run(report: &RunReport, program: &Program) -> Option<Self> {
        let profiler = report.profile.clone()?;
        let model = ProfileModel::build(&profiler, report.cycles);
        let method_names = program
            .methods
            .iter()
            .map(|m| m.qualified_name(program))
            .collect();
        Some(Self {
            profiler,
            model,
            final_cycles: report.cycles,
            method_names,
            fingerprint: report.fingerprint,
            state_digest: report.state_digest,
        })
    }

    /// Chrome trace-event JSON (canonical, Perfetto-loadable, logical
    /// cycles as the timebase).
    pub fn chrome_json(&self) -> Json {
        chrome_trace(&self.profiler, self.final_cycles, &self.method_names)
    }

    /// Folded-stacks flamegraph text (`thread;outer;...;inner cycles`).
    pub fn folded(&self) -> String {
        folded_stacks(&self.model, &self.method_names)
    }

    /// Canonical-JSON summary with the top-`top` hot methods, the phase
    /// table, QOp cycle attribution, and the run's fingerprint/digest.
    pub fn summary_json(&self, top: usize) -> Json {
        let mut j = summary_json(
            &self.profiler,
            &self.model,
            &self.method_names,
            &QOP_KIND_NAMES,
            top,
        );
        if let Json::Obj(pairs) = &mut j {
            pairs.push(("fingerprint".to_string(), Json::UInt(self.fingerprint)));
            pairs.push(("state_digest".to_string(), Json::UInt(self.state_digest)));
        }
        j.canonicalize();
        j
    }

    /// The hottest method's qualified name (by exclusive cycles), if any
    /// cycles were attributed at all.
    pub fn hottest_method(&self) -> Option<String> {
        let (m, _) = self.model.top_methods(1).into_iter().next()?;
        Some(
            self.method_names
                .get(m as usize)
                .cloned()
                .unwrap_or_else(|| format!("m{m}")),
        )
    }
}

/// Replay `trace` under `spec` with the profiler armed and resolve the
/// profile. The replay itself is unchanged — profiling is observer-only —
/// so the returned report's fingerprint equals an unprofiled replay's.
pub fn profile_replay(
    spec: &ExecSpec,
    trace: Trace,
    sym: SymmetryConfig,
) -> (ProfileReport, RunReport, Vec<Desync>) {
    let spec = spec.clone().with_profile(true);
    let (report, desyncs) = replay_run(&spec, trace, sym);
    let profile = ProfileReport::from_run(&report, &spec.program)
        .expect("profiled replay must produce a profiler log");
    (profile, report, desyncs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::record_run;

    fn fig1_spec() -> (ExecSpec, fn(&mut djvm::Vm)) {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == "fig1_ab")
            .unwrap();
        (ExecSpec::new((w.build)()).with_seed(5), w.natives)
    }

    #[test]
    fn profile_replay_is_neutral_and_resolved() {
        let (spec, natives) = fig1_spec();
        let (rec, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
        // Unprofiled replay for the neutrality baseline.
        let (plain, d0) = replay_run(&spec, trace.clone(), SymmetryConfig::full());
        assert!(d0.is_empty());
        let (prof, report, desyncs) = profile_replay(&spec, trace, SymmetryConfig::full());
        assert!(desyncs.is_empty());
        assert_eq!(
            report.fingerprint, plain.fingerprint,
            "profiler perturbed replay"
        );
        assert_eq!(report.state_digest, plain.state_digest);
        assert_eq!(report.fingerprint, rec.fingerprint);
        assert_eq!(prof.fingerprint, report.fingerprint);
        // The model accounts for the whole run and resolves real names.
        assert!(prof.model.total_cycles > 0);
        let hot = prof.hottest_method().unwrap();
        let unresolved = hot
            .strip_prefix('m')
            .is_some_and(|r| !r.is_empty() && r.bytes().all(|b| b.is_ascii_digit()));
        assert!(!unresolved, "unresolved method name: {hot}");
        assert!(!prof.folded().is_empty());
    }

    #[test]
    fn artifacts_are_byte_deterministic_across_replays() {
        let (spec, natives) = fig1_spec();
        let (_, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
        let (p1, _, _) = profile_replay(&spec, trace.clone(), SymmetryConfig::full());
        let (p2, _, _) = profile_replay(&spec, trace, SymmetryConfig::full());
        assert_eq!(p1.chrome_json().to_string(), p2.chrome_json().to_string());
        assert_eq!(p1.folded(), p2.folded());
        assert_eq!(
            p1.summary_json(10).to_string(),
            p2.summary_json(10).to_string()
        );
    }

    #[test]
    fn unprofiled_run_yields_no_report() {
        let (spec, natives) = fig1_spec();
        let (rec, _) = record_run(&spec, natives, SymmetryConfig::full(), true);
        assert!(ProfileReport::from_run(&rec, &spec.program).is_none());
    }

    #[test]
    fn summary_includes_qop_attribution_when_quickened() {
        let (spec, natives) = fig1_spec();
        let (_, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
        let (prof, report, _) = profile_replay(&spec, trace, SymmetryConfig::full());
        let s = prof.summary_json(5).to_string();
        assert!(s.contains("\"fingerprint\""));
        assert!(s.contains("\"hot_methods\""));
        if report.counters.steps > 0 && spec.vm.quicken {
            // Quickened dispatch attributes every cycle to a QOp kind.
            let total: u64 = prof.profiler.qop_cycles.iter().sum();
            assert!(total > 0, "no QOp cycles attributed: {s}");
        }
    }
}
