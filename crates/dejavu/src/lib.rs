//! # dejavu — deterministic replay for cross-optimized multithreaded guests
//!
//! Reproduction of the core contribution of *"A Perturbation-Free Replay
//! Platform for Cross-Optimized Multithreaded Applications"* (Choi, Alpern,
//! Ngo, Sridharan, Vlissides — IPDPS 2001): the DejaVu record/replay engine
//! for the `djvm` runtime.
//!
//! ## The strategy (paper §2)
//!
//! Operations are divided into **deterministic** (instruction execution,
//! allocation, GC, class loading, synchronization against replayed
//! scheduler state) and **non-deterministic** (timer-interrupt preemption,
//! wall-clock reads, native-call results). Record captures only the
//! latter; replay regenerates them and everything else replays itself —
//! including the entire thread package, so synchronization-induced thread
//! switches need no logging at all.
//!
//! ```
//! use dejavu::{record_replay, ExecSpec, SymmetryConfig};
//! use djvm::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new();
//! let m = pb.method("main", 0, 0).code(|a| {
//!     a.now().iconst(2).rem().print(); // non-deterministic output
//!     a.halt();
//! });
//! let spec = ExecSpec::new(pb.finish(m).unwrap());
//! let (rec, rep, accurate) = record_replay(&spec, |_| {}, SymmetryConfig::full());
//! assert!(accurate);
//! assert_eq!(rec.output, rep.output);
//! ```
//!
//! ## Modules
//!
//! * [`trace`] — the two-stream trace (switch deltas + data events).
//! * [`blocktrace`] — the block-structured on-disk format: delta-encoded,
//!   compressed fixed-budget blocks (LZ or adaptive range coder, per
//!   block) with a footer index for O(block) seek (see DESIGN.md §6).
//! * [`record`] — Fig. 2-(A): the recording hook.
//! * [`replay`] — Fig. 2-(B): the replaying hook.
//! * [`symmetry`] — §2.4's symmetric-instrumentation machinery, each
//!   mechanism individually defeatable for ablation.
//! * [`driver`] — run orchestration and the accuracy criterion.

pub mod blocktrace;
pub mod driver;
pub mod observe;
pub mod profiler;
pub mod record;
pub mod replay;
pub mod symmetry;
pub mod trace;

pub use blocktrace::{
    assemble_block_file, decode_any, decode_block_events, encode_trace, ingest_bytes, sniff_format,
    BlockFile, BlockInfo, BlockMethod, BlockStats, IngestedTrace, RawBlock, TraceError,
    TraceFormat, TraceIngest, DEFAULT_BLOCK_BUDGET, DEFAULT_INGEST_LIMIT,
};
pub use driver::{
    full_fidelity, passthrough_run, record_replay, record_replay_forensic, record_run, replay_run,
    ExecSpec, ForensicOutcome, RunReport,
};
pub use observe::{
    counters_json, run_metrics_json, DivergenceReport, PhaseSpan, RunTelemetry, ThreadClockDelta,
};
pub use profiler::{profile_replay, ProfileReport};
pub use record::DejaVuRecorder;
pub use replay::{DejaVuReplayer, Desync};
pub use symmetry::{Ablation, SymmetryConfig};
pub use trace::{DataRec, SwitchRec, Trace, TraceStats};
