//! Symmetric instrumentation (paper §2.4) — with each symmetry
//! individually defeatable for the ablation experiments (E10).
//!
//! DejaVu cannot replay its own instrumentation: record *writes* the trace
//! while replay *reads* it, so the instrumentation's guest-visible side
//! effects differ between modes "by definition". Accuracy therefore demands
//! that every such side effect be made identical in both modes:
//!
//! | Symmetry | Hazard it closes | Paper mechanism |
//! |---|---|---|
//! | `preallocate_buffer` | record lazily allocates its trace buffer; replay never needs one → allocation serials shift | pre-allocate the same buffer in both modes at init |
//! | `preload_compile` | record lazily compiles `sys$flushTrace` (+ its leaf callee); replay compiles `sys$fillTrace` → different code-object allocations | pre-load/pre-compile all DejaVu methods at init |
//! | `warmup_io` | record touches the output path (1 alloc); replay touches the input path (2 allocs) | write-then-read a warm-up file at init in both modes |
//! | `eager_stack_growth` | flush frames are bigger than fill frames → stack overflow (a heap allocation) fires at different points | grow the stack eagerly before instrumentation calls when headroom is low |
//! | `live_clock` | flush executes more yield points than fill → nyp counts diverge | pause the logical clock inside instrumentation (`liveClock`) |
//!
//! With every flag on, `fingerprint(record) == fingerprint(replay)`. The
//! ablation tests disable one flag at a time and watch replay diverge.

/// Which symmetries are active. [`SymmetryConfig::full`] is DejaVu proper;
/// anything else is a deliberately broken variant for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymmetryConfig {
    /// Pre-allocate the trace buffer at init in both modes
    /// ("Symmetry in Allocation").
    pub preallocate_buffer: bool,
    /// Pre-compile the flush/fill helper methods at init in both modes
    /// ("Symmetry in Loading and Compilation").
    pub preload_compile: bool,
    /// Touch both the write and read I/O paths at init in both modes
    /// (the write-then-read warm-up file).
    pub warmup_io: bool,
    /// Eagerly grow the activation stack before instrumentation helper
    /// calls ("Symmetry in Stack Overflow").
    pub eager_stack_growth: bool,
    /// Do not count instrumentation-executed yield points on the logical
    /// clock ("Symmetry in Updating the Logical Clock", the liveClock flag
    /// of Fig. 2).
    pub live_clock: bool,
}

impl SymmetryConfig {
    /// Full symmetry: DejaVu as published.
    pub const fn full() -> Self {
        Self {
            preallocate_buffer: true,
            preload_compile: true,
            warmup_io: true,
            eager_stack_growth: true,
            live_clock: true,
        }
    }

    /// Everything off: the naive instrumentation a first implementation
    /// would write.
    pub const fn naive() -> Self {
        Self {
            preallocate_buffer: false,
            preload_compile: false,
            warmup_io: false,
            eager_stack_growth: false,
            live_clock: false,
        }
    }

    /// Full symmetry with exactly one mechanism disabled (for ablation).
    pub fn ablate(which: Ablation) -> Self {
        let mut s = Self::full();
        match which {
            Ablation::PreallocateBuffer => s.preallocate_buffer = false,
            Ablation::PreloadCompile => s.preload_compile = false,
            Ablation::WarmupIo => s.warmup_io = false,
            Ablation::EagerStackGrowth => s.eager_stack_growth = false,
            Ablation::LiveClock => s.live_clock = false,
        }
        s
    }

    pub fn is_full(&self) -> bool {
        *self == Self::full()
    }
}

impl Default for SymmetryConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// The individually ablatable symmetry mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    PreallocateBuffer,
    PreloadCompile,
    WarmupIo,
    EagerStackGrowth,
    LiveClock,
}

impl Ablation {
    pub const ALL: [Ablation; 5] = [
        Ablation::PreallocateBuffer,
        Ablation::PreloadCompile,
        Ablation::WarmupIo,
        Ablation::EagerStackGrowth,
        Ablation::LiveClock,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Ablation::PreallocateBuffer => "allocation",
            Ablation::PreloadCompile => "loading+compilation",
            Ablation::WarmupIo => "warm-up I/O",
            Ablation::EagerStackGrowth => "stack overflow",
            Ablation::LiveClock => "logical clock (liveClock)",
        }
    }
}

/// Words of the guest-heap trace buffer both modes allocate at init.
pub const TRACE_BUFFER_WORDS: usize = 256;

/// Stack headroom (words) ensured before an instrumentation helper call;
/// must cover the larger of the flush/fill frame footprints.
pub const HELPER_HEADROOM: u64 = 64;

/// Run an instrumentation helper every this many preemptive switches.
pub const FLUSH_PERIOD: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_full() {
        assert!(SymmetryConfig::full().is_full());
        assert!(!SymmetryConfig::naive().is_full());
    }

    #[test]
    fn each_ablation_differs_from_full_in_one_flag() {
        for a in Ablation::ALL {
            let s = SymmetryConfig::ablate(a);
            assert!(!s.is_full());
            let flags = |c: SymmetryConfig| {
                [
                    c.preallocate_buffer,
                    c.preload_compile,
                    c.warmup_io,
                    c.eager_stack_growth,
                    c.live_clock,
                ]
            };
            let diff = flags(s)
                .iter()
                .zip(flags(SymmetryConfig::full()).iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1, "{:?}", a);
        }
    }

    #[test]
    fn ablation_names_unique() {
        let mut names: Vec<_> = Ablation::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Ablation::ALL.len());
    }
}
