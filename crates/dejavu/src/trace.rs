//! The DejaVu trace: what record captures and replay consumes.
//!
//! A trace has two logical streams, matching the paper's design:
//!
//! * the **switch stream** — one record per *preemptive* thread switch,
//!   carrying only the yield-point delta `nyp` since the previous switch
//!   (Fig. 2). Deterministic switches (synchronization) are *not* logged;
//!   that is DejaVu's headline trace-size advantage over schemes that log
//!   every critical event (§5).
//! * the **data stream** — the out-states of non-deterministic operations
//!   in execution order: wall-clock reads (§2.2) and native-call outcomes
//!   including callback parameters (§2.5).
//!
//! The binary encoding is varint-based (the shared [`codec::bin`]
//! primitives); [`Trace::encoded`] / [`Trace::decode`] round-trip it, and
//! [`TraceStats`] reports the sizes the trace-size experiment (E5)
//! compares against the baselines.
//!
//! In *paranoid* mode each switch record additionally carries the thread
//! id observed during record, used purely as a replay-desync detector —
//! the paper's minimal trace does not need it.

use codec::{get_varint, put_varint, unzigzag, zigzag};
use djvm::MethodId;

/// One preemptive thread switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRec {
    /// Yield points executed (on the logical clock) since the last
    /// preemptive switch.
    pub nyp: u64,
    /// Thread that was running when the switch happened (paranoid mode
    /// only; `u32::MAX` when absent).
    pub check_tid: u32,
}

/// One non-deterministic data event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataRec {
    /// A wall-clock read (an `Op::Now`, a timed-wait/sleep deadline
    /// computation, or a scheduler idle-wake read).
    Clock(i64),
    /// A native call's observable outcome.
    Native {
        ret: i64,
        callbacks: Vec<(MethodId, Vec<i64>)>,
    },
}

/// A complete recording of one execution's non-determinism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub paranoid: bool,
    pub switches: Vec<SwitchRec>,
    pub data: Vec<DataRec>,
}

/// Byte-level size breakdown (experiment E5), now with per-event-kind
/// accounting: how many encoded bytes each stream kind contributes, and
/// the varint encoding's compression ratio against a fixed-width
/// equivalent of the same records (8-byte integers, 4-byte ids/counts).
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStats {
    pub switch_count: usize,
    pub clock_count: usize,
    pub native_count: usize,
    pub switch_bytes: usize,
    /// Encoded bytes of the clock-read portion of the data stream
    /// (including each record's tag byte).
    pub clock_bytes: usize,
    /// Encoded bytes of the native-call portion of the data stream
    /// (including tags and callback payloads).
    pub native_bytes: usize,
    pub data_bytes: usize,
    pub total_bytes: usize,
    /// Size of the same records at fixed width: 8 bytes per integer,
    /// 4 bytes per id/count, 1 byte per tag — the naive encoding a
    /// log-everything recorder would write.
    pub raw_bytes: usize,
}

impl TraceStats {
    /// Varint compression ratio in permille: `encoded / raw * 1000`.
    /// Integer (not float) so telemetry JSON stays byte-deterministic.
    pub fn compression_permille(&self) -> u64 {
        if self.raw_bytes == 0 {
            return 1000;
        }
        (self.total_bytes as u64 * 1000) / self.raw_bytes as u64
    }

    /// Deterministic JSON (keys pre-sorted).
    pub fn to_json(&self) -> codec::Json {
        codec::Json::obj(vec![
            ("clock_bytes", codec::Json::UInt(self.clock_bytes as u64)),
            ("clock_count", codec::Json::UInt(self.clock_count as u64)),
            (
                "compression_permille",
                codec::Json::UInt(self.compression_permille()),
            ),
            ("data_bytes", codec::Json::UInt(self.data_bytes as u64)),
            ("native_bytes", codec::Json::UInt(self.native_bytes as u64)),
            ("native_count", codec::Json::UInt(self.native_count as u64)),
            ("raw_bytes", codec::Json::UInt(self.raw_bytes as u64)),
            ("switch_bytes", codec::Json::UInt(self.switch_bytes as u64)),
            ("switch_count", codec::Json::UInt(self.switch_count as u64)),
            ("total_bytes", codec::Json::UInt(self.total_bytes as u64)),
        ])
    }
}

const MAGIC: &[u8; 4] = b"DJV1";

impl Trace {
    /// Encode to the binary on-disk format.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(self.paranoid as u8);
        put_varint(&mut out, self.switches.len() as u64);
        for s in &self.switches {
            put_varint(&mut out, s.nyp);
            if self.paranoid {
                put_varint(&mut out, s.check_tid as u64);
            }
        }
        put_varint(&mut out, self.data.len() as u64);
        for d in &self.data {
            match d {
                DataRec::Clock(v) => {
                    out.push(0);
                    put_varint(&mut out, zigzag(*v));
                }
                DataRec::Native { ret, callbacks } => {
                    out.push(1);
                    put_varint(&mut out, zigzag(*ret));
                    put_varint(&mut out, callbacks.len() as u64);
                    for (m, args) in callbacks {
                        put_varint(&mut out, *m as u64);
                        put_varint(&mut out, args.len() as u64);
                        for &a in args {
                            put_varint(&mut out, zigzag(a));
                        }
                    }
                }
            }
        }
        out
    }

    /// Decode the binary format; `None` on corruption.
    pub fn decode(buf: &[u8]) -> Option<Trace> {
        if buf.len() < 5 || &buf[..4] != MAGIC {
            return None;
        }
        let paranoid = buf[4] != 0;
        let mut pos = 5;
        let nswitch = get_varint(buf, &mut pos)? as usize;
        let mut switches = Vec::with_capacity(nswitch.min(1 << 20));
        for _ in 0..nswitch {
            let nyp = get_varint(buf, &mut pos)?;
            let check_tid = if paranoid {
                get_varint(buf, &mut pos)? as u32
            } else {
                u32::MAX
            };
            switches.push(SwitchRec { nyp, check_tid });
        }
        let ndata = get_varint(buf, &mut pos)? as usize;
        let mut data = Vec::with_capacity(ndata.min(1 << 20));
        for _ in 0..ndata {
            let tag = *buf.get(pos)?;
            pos += 1;
            match tag {
                0 => data.push(DataRec::Clock(unzigzag(get_varint(buf, &mut pos)?))),
                1 => {
                    let ret = unzigzag(get_varint(buf, &mut pos)?);
                    let ncb = get_varint(buf, &mut pos)? as usize;
                    let mut callbacks = Vec::with_capacity(ncb.min(1 << 16));
                    for _ in 0..ncb {
                        let m = get_varint(buf, &mut pos)? as MethodId;
                        let nargs = get_varint(buf, &mut pos)? as usize;
                        let mut args = Vec::with_capacity(nargs.min(1 << 16));
                        for _ in 0..nargs {
                            args.push(unzigzag(get_varint(buf, &mut pos)?));
                        }
                        callbacks.push((m, args));
                    }
                    data.push(DataRec::Native { ret, callbacks });
                }
                _ => return None,
            }
        }
        if pos != buf.len() {
            return None;
        }
        Some(Trace {
            paranoid,
            switches,
            data,
        })
    }

    /// Size breakdown of the encoded trace, per event kind.
    pub fn stats(&self) -> TraceStats {
        let mut sw = Vec::new();
        for s in &self.switches {
            put_varint(&mut sw, s.nyp);
            if self.paranoid {
                put_varint(&mut sw, s.check_tid as u64);
            }
        }
        let mut clock_count = 0;
        let mut clock_bytes = 0;
        let mut native_bytes = 0;
        // Fixed-width equivalent: every switch is 8 bytes of nyp (+4 of
        // check tid in paranoid mode); every data record is a tag byte
        // plus 8-byte integers and 4-byte ids/counts.
        let mut raw_bytes = self.switches.len() * if self.paranoid { 12 } else { 8 };
        let mut scratch = Vec::new();
        for d in &self.data {
            scratch.clear();
            match d {
                DataRec::Clock(v) => {
                    put_varint(&mut scratch, zigzag(*v));
                    clock_count += 1;
                    clock_bytes += 1 + scratch.len();
                    raw_bytes += 1 + 8;
                }
                DataRec::Native { ret, callbacks } => {
                    put_varint(&mut scratch, zigzag(*ret));
                    put_varint(&mut scratch, callbacks.len() as u64);
                    raw_bytes += 1 + 8 + 4;
                    for (m, args) in callbacks {
                        put_varint(&mut scratch, *m as u64);
                        put_varint(&mut scratch, args.len() as u64);
                        raw_bytes += 4 + 4;
                        for &a in args {
                            put_varint(&mut scratch, zigzag(a));
                            raw_bytes += 8;
                        }
                    }
                    native_bytes += 1 + scratch.len();
                }
            }
        }
        let total = self.encoded().len();
        TraceStats {
            switch_count: self.switches.len(),
            clock_count,
            native_count: self.data.len() - clock_count,
            switch_bytes: sw.len(),
            clock_bytes,
            native_bytes,
            data_bytes: total - sw.len() - 5,
            total_bytes: total,
            raw_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(paranoid: bool) -> Trace {
        Trace {
            paranoid,
            switches: vec![
                SwitchRec {
                    nyp: 1,
                    check_tid: if paranoid { 0 } else { u32::MAX },
                },
                SwitchRec {
                    nyp: 100_000,
                    check_tid: if paranoid { 3 } else { u32::MAX },
                },
            ],
            data: vec![
                DataRec::Clock(0),
                DataRec::Clock(-5),
                DataRec::Clock(i64::MAX),
                DataRec::Native {
                    ret: -42,
                    callbacks: vec![(7, vec![1, -2, 3]), (9, vec![])],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_plain() {
        let t = sample(false);
        assert_eq!(Trace::decode(&t.encoded()).unwrap(), t);
    }

    #[test]
    fn roundtrip_paranoid() {
        let t = sample(true);
        assert_eq!(Trace::decode(&t.encoded()).unwrap(), t);
    }

    #[test]
    fn corrupt_rejected() {
        let t = sample(false);
        let mut buf = t.encoded();
        buf[0] = b'X';
        assert!(Trace::decode(&buf).is_none());
        let mut buf2 = t.encoded();
        buf2.truncate(buf2.len() - 1);
        assert!(Trace::decode(&buf2).is_none());
        let mut buf3 = t.encoded();
        buf3.push(0);
        assert!(Trace::decode(&buf3).is_none());
    }

    #[test]
    fn roundtrip_empty_trace() {
        let t = Trace::default();
        assert_eq!(Trace::decode(&t.encoded()).unwrap(), t);
        // Header + two zero-length stream counts.
        assert_eq!(t.encoded().len(), 7);
    }

    #[test]
    fn roundtrip_max_nyp_delta() {
        // A replay that never preempts until the very end of a long run:
        // the nyp delta can be any u64.
        let t = Trace {
            paranoid: false,
            switches: vec![
                SwitchRec {
                    nyp: u64::MAX,
                    check_tid: u32::MAX,
                },
                SwitchRec {
                    nyp: 1,
                    check_tid: u32::MAX,
                },
            ],
            data: vec![DataRec::Clock(i64::MIN)],
        };
        assert_eq!(Trace::decode(&t.encoded()).unwrap(), t);
    }

    #[test]
    fn roundtrip_paranoid_max_tid() {
        let t = Trace {
            paranoid: true,
            switches: vec![SwitchRec {
                nyp: u64::MAX,
                check_tid: u32::MAX,
            }],
            data: vec![],
        };
        assert_eq!(Trace::decode(&t.encoded()).unwrap(), t);
    }

    #[test]
    fn stats_count_streams() {
        let t = sample(false);
        let s = t.stats();
        assert_eq!(s.switch_count, 2);
        assert_eq!(s.clock_count, 3);
        assert_eq!(s.native_count, 1);
        assert_eq!(s.total_bytes, t.encoded().len());
        assert!(s.switch_bytes < s.total_bytes);
    }

    #[test]
    fn per_kind_bytes_partition_the_data_stream() {
        let t = sample(false);
        let s = t.stats();
        assert!(s.clock_bytes > 0 && s.native_bytes > 0);
        // `data_bytes` is everything past the header and switch payload:
        // the two stream-length varints plus the per-kind record bytes
        // (tags included in the kind that owns them).
        let mut lenbuf = Vec::new();
        put_varint(&mut lenbuf, t.switches.len() as u64);
        put_varint(&mut lenbuf, t.data.len() as u64);
        assert_eq!(s.clock_bytes + s.native_bytes + lenbuf.len(), s.data_bytes);
    }

    #[test]
    fn varints_beat_fixed_width() {
        let s = sample(false).stats();
        assert!(s.raw_bytes > s.total_bytes);
        assert!(s.compression_permille() < 1000);
        // Empty trace: ratio defined as 1000 (no compression to speak of).
        assert_eq!(Trace::default().stats().compression_permille(), 1000);
    }

    #[test]
    fn stats_json_is_valid_and_deterministic() {
        let s = sample(true).stats();
        let a = s.to_json().to_string();
        let b = sample(true).stats().to_json().to_string();
        assert_eq!(a, b);
        assert!(codec::Json::parse(&a).is_ok());
        assert_eq!(a, s.to_json().to_canonical_string(), "keys pre-sorted");
    }

    #[test]
    fn paranoid_mode_costs_bytes() {
        let plain = sample(false).stats().total_bytes;
        let paranoid = sample(true).stats().total_bytes;
        assert!(paranoid > plain);
    }

    #[test]
    fn switch_stream_is_tiny() {
        // A million-yield-point delta still fits in 3 bytes: the essence of
        // the nyp-delta encoding.
        let t = Trace {
            paranoid: false,
            switches: vec![SwitchRec {
                nyp: 1_000_000,
                check_tid: u32::MAX,
            }],
            data: vec![],
        };
        assert!(t.stats().switch_bytes <= 3);
    }
}
