//! Content-addressed trace store: bytes/run vs naive per-run files,
//! dedup ratio over a 150+-run fig1-family corpus, and store-served vs
//! file-served seek latency, reported in `BENCH_STORE.json`.
//!
//! The corpus is the fig1 family (fig1_ab, fig1_cd, fig1_hot) across 17
//! seeds, each run put 3 times — the fleet-ingest pattern where the same
//! recording arrives from several sessions. `meta` carries the measured
//! shape: `naive_bytes` is what per-run files would cost (`file_bytes ×
//! puts`), `store_bytes` is blocks + catalog on disk, and
//! `dedup_ratio_milli` their ratio ×1000 (the E20 acceptance line is
//! ≥ 2000, asserted here so a dedup regression fails the bench, not
//! just the verify script).
//!
//! Fingerprint discipline: one run is replayed straight out of the
//! store after a full compaction pass and its fingerprint compared to
//! the recording — `fingerprint_match` in `meta` must be true, because
//! a store that perturbs replays has no dedup ratio worth reporting.

use baselines::TimeTravel;
use bench::bench_spec;
use bench::harness::Group;
use codec::Json;
use dejavu::{
    encode_trace, record_run, replay_run, BlockFile, ExecSpec, SymmetryConfig, TraceFormat,
    DEFAULT_BLOCK_BUDGET,
};
use std::sync::Arc;
use store::{Store, DEFAULT_COLD_THRESHOLD};

const FAMILY: &[&str] = &["fig1_ab", "fig1_cd", "fig1_hot"];
const SEEDS: u64 = 17;
/// Puts per distinct run — the repeated-ingest pattern the store dedups.
const PUTS_PER_RUN: u64 = 3;

fn replay_vm(spec: &ExecSpec) -> djvm::Vm {
    djvm::Vm::boot(
        Arc::clone(&spec.program),
        spec.vm.clone(),
        Box::new(djvm::JitteredTimer::new(
            spec.seed,
            spec.timer_base,
            spec.timer_jitter,
        )),
        Box::new(djvm::CycleClock::new(spec.clock_origin, spec.cycles_per_ms)),
    )
    .expect("workload boots")
}

fn main() {
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bench-store");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench scratch dir");
    let store = Store::open(&root).expect("open store");

    // Build the corpus: record each (workload, seed) once — records are
    // deterministic, so repeated puts carry identical bytes — and put it
    // PUTS_PER_RUN times with the recorded (verified) fingerprint.
    let mut sample = None; // (spec, fingerprint, bytes, entry) for fig1_hot/1
    for name in FAMILY {
        for seed in 1..=SEEDS {
            let (spec, natives) = bench_spec(name, seed);
            let (rec, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
            let bytes = encode_trace(&trace, TraceFormat::Block, DEFAULT_BLOCK_BUDGET);
            let mut entry = String::new();
            for _ in 0..PUTS_PER_RUN {
                entry = store
                    .put_bytes(name, seed, &bytes, rec.fingerprint, "")
                    .expect("put")
                    .entry;
            }
            if *name == "fig1_hot" && seed == 1 {
                sample = Some((spec, rec.fingerprint, bytes, entry));
            }
        }
    }
    let (sample_spec, sample_fp, sample_bytes, sample_entry) = sample.expect("fig1_hot/1 put");

    // A full maintenance cycle before measuring: nothing is hot yet, so
    // everything migrates to the cold (range-coder) tier — the steady
    // state a long-lived corpus store sits in.
    store.gc().expect("gc");
    store.compact(DEFAULT_COLD_THRESHOLD).expect("compact");

    // The measured disk shape, snapshotted *before* the timed rows run:
    // the repeated-put row below keeps bumping the sample entry's put
    // counter, which would inflate `runs`/`dedup_ratio_milli` past what
    // the corpus actually contains. Stats are a pure function of store
    // content, so these numbers are reproducible run to run.
    let stats = store.disk_stats().expect("disk stats");
    let stat = |k: &str| stats.field(k).unwrap().as_u64().unwrap();
    assert!(
        stat("dedup_ratio_milli") >= 2000,
        "dedup ratio {} below the 2x acceptance line",
        stat("dedup_ratio_milli")
    );

    let mut g = Group::new("STORE");

    g.bench("put/dedup_repeat/fig1_hot", || {
        store
            .put_bytes("fig1_hot", 1, &sample_bytes, sample_fp, "")
            .expect("repeat put");
    });
    g.bench("get/reconstruct/fig1_hot", || {
        let back = store.get_bytes(&sample_entry).expect("get");
        assert_eq!(back.len(), sample_bytes.len());
    });
    g.bench("open/snapshot_tier/fig1_hot", || {
        let stored = store.open_trace(&sample_entry).expect("open");
        assert!(!stored.boundaries.is_empty());
    });

    // Seek latency, store-served vs file-served: same trace, same
    // boundary checkpoints, the only difference is where the blocks came
    // from. Each iteration seeks to the far edge then back inside the
    // middle block — the ≤-one-block-span pattern TimeTravel guarantees.
    let stored = store.open_trace(&sample_entry).expect("open for seek");
    let last = *stored.boundaries.last().expect("multi-block trace");
    let mid = stored.boundaries[stored.boundaries.len() / 2];
    let mut tt_store = TimeTravel::new_indexed(
        replay_vm(&sample_spec),
        stored.trace.clone(),
        SymmetryConfig::full(),
        u64::MAX, // boundary checkpoints only
        stored.boundaries.clone(),
    );
    g.bench("seek/from_store/fig1_hot", || {
        tt_store.seek_logical(last);
        tt_store.seek_logical(mid + 1);
    });
    let bf = BlockFile::parse(sample_bytes.clone()).expect("parse sample");
    let bounds = bf.boundaries();
    let mut tt_file = TimeTravel::new_indexed(
        replay_vm(&sample_spec),
        bf.to_trace().expect("decode sample"),
        SymmetryConfig::full(),
        u64::MAX,
        bounds,
    );
    g.bench("seek/from_file/fig1_hot", || {
        tt_file.seek_logical(last);
        tt_file.seek_logical(mid + 1);
    });

    // Fingerprint neutrality through the whole machinery (dedup + gc +
    // compaction + snapshot cache): replay out of the store, compare.
    let (rep, desyncs) = replay_run(
        &sample_spec,
        store.open_trace(&sample_entry).expect("open").trace,
        SymmetryConfig::full(),
    );
    let fingerprint_match = desyncs.is_empty() && rep.fingerprint == sample_fp;
    assert!(fingerprint_match, "store-served replay diverged");

    g.meta("runs", Json::UInt(stat("runs")));
    g.meta("entries", Json::UInt(stat("entries")));
    g.meta("naive_bytes", Json::UInt(stat("naive_bytes")));
    g.meta("store_bytes", Json::UInt(stat("store_bytes")));
    g.meta("bytes_per_run", Json::UInt(stat("bytes_per_run")));
    g.meta(
        "naive_bytes_per_run",
        Json::UInt(stat("naive_bytes_per_run")),
    );
    g.meta("dedup_ratio_milli", Json::UInt(stat("dedup_ratio_milli")));
    g.meta("unique_blocks", Json::UInt(stat("blocks")));
    g.meta("total_block_refs", Json::UInt(stat("total_block_refs")));
    g.meta("tier_range", Json::UInt(stat("tier_range")));
    g.meta("tier_lz77", Json::UInt(stat("tier_lz77")));
    g.meta("tier_stored", Json::UInt(stat("tier_stored")));
    g.meta("fingerprint_match", Json::Bool(fingerprint_match));
    g.attach_telemetry("store_counters", store.counters_json());
    g.finish();
}
