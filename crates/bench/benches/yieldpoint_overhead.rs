//! E3 — per-yield-point instrumentation cost (paper Fig. 2): a tight loop
//! whose backedge is a yield point, executed under passthrough vs the
//! record-mode hook. The difference divided by the yield-point count is
//! the marginal cost of the Figure-2 instrumentation.

use bench::harness::{black_box, Group};
use dejavu::{ExecSpec, SymmetryConfig};
use djvm::ProgramBuilder;

/// A loop of `n` iterations — every iteration takes the backedge (one
/// yield point per 6 instructions).
fn loop_program(n: i64) -> djvm::Program {
    let mut pb = ProgramBuilder::new();
    let m = pb.method("main", 0, 1).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(n).ge().if_nz("done");
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.halt();
    });
    pb.finish(m).unwrap()
}

fn main() {
    let mut g = Group::new("yieldpoint_overhead");
    g.sample_size(10);
    let mut spec = ExecSpec::new(loop_program(50_000));
    spec.timer_base = 997;
    spec.timer_jitter = 100;
    g.bench("passthrough_50k_yieldpoints", || {
        black_box(dejavu::passthrough_run(&spec, |_| {}));
    });
    g.bench("record_50k_yieldpoints", || {
        black_box(dejavu::record_run(
            &spec,
            |_| {},
            SymmetryConfig::full(),
            false,
        ));
    });
    let (_, trace) = dejavu::record_run(&spec, |_| {}, SymmetryConfig::full(), false);
    g.bench("replay_50k_yieldpoints", || {
        black_box(dejavu::replay_run(
            &spec,
            trace.clone(),
            SymmetryConfig::full(),
        ));
    });
    g.finish();
}
