//! E8 — remote-reflection query latency (paper §3): the Figure-3
//! `lineNumberOf` query through the in-process (ptrace-style) memory vs a
//! snapshot image, and the raw word-read cost model.

use bench::harness::{black_box, Group};
use djvm::{interp, CycleClock, FixedTimer, Passthrough, ProgramBuilder, Vm, VmConfig};
use reflect::{LocalVmMemory, ProcessMemory, RemoteReflector, SnapshotMemory};
use std::sync::Arc;

fn app() -> (Vm, Arc<djvm::Program>) {
    let mut pb = ProgramBuilder::new();
    let m = pb.method("main", 0, 1).code(|a| {
        a.line(1).iconst(0).store(0);
        a.label("top");
        a.line(2).load(0).iconst(100).ge().if_nz("done");
        a.line(3).load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.line(4).halt();
    });
    let p = Arc::new(pb.finish(m).unwrap());
    let mut vm = Vm::boot(
        Arc::clone(&p),
        VmConfig::default(),
        Box::new(FixedTimer::new(1 << 20)),
        Box::new(CycleClock::new(0, 100)),
    )
    .unwrap();
    let mut hook = Passthrough;
    interp::run(&mut vm, &mut hook, 1_000_000);
    (vm, p)
}

fn main() {
    let mut g = Group::new("reflection_latency");
    g.sample_size(20);
    let (vm, program) = app();
    let table = vm.boot_image.method_table;
    let entry = program.entry;

    {
        let mem = LocalVmMemory::new(&vm);
        let mut refl = RemoteReflector::new(Arc::clone(&program), &mem);
        refl.map_boot_method_table(table);
        g.bench("fig3_query_local_memory", || {
            black_box(refl.line_number_of(entry, 3).unwrap());
        });
    }
    {
        let snap = SnapshotMemory::from_vm(&vm);
        let mut refl = RemoteReflector::new(Arc::clone(&program), &snap);
        refl.map_boot_method_table(table);
        g.bench("fig3_query_snapshot_memory", || {
            black_box(refl.line_number_of(entry, 3).unwrap());
        });
    }
    {
        let mem = LocalVmMemory::new(&vm);
        g.bench("raw_remote_word_read", || {
            black_box(mem.read_word(table).unwrap());
        });
    }
    g.finish();
}
