//! Profiler overhead: replay throughput with the flight recorder off vs
//! on. The profiler is a pure observer (fingerprints are bit-identical
//! either way — asserted here, not assumed), so the only cost it is
//! *allowed* to have is replay-side wall time; this bench quantifies it.
//!
//! `work_units` is the replayed instruction count, so the JSON reports
//! steps/second for both configurations and the overhead is the ratio.

use bench::bench_spec;
use bench::harness::{black_box, Group};
use dejavu::SymmetryConfig;

fn main() {
    let mut g = Group::new("profile");
    g.sample_size(10);
    for name in ["fig1_hot", "racy_counter", "producer_consumer"] {
        let (spec, natives) = bench_spec(name, 2);
        let (rec, trace) = dejavu::record_run(&spec, natives, SymmetryConfig::full(), false);
        let steps = rec.counters.steps;
        g.bench_units(&format!("replay_profile_off/{name}"), steps, || {
            black_box(dejavu::replay_run(
                &spec,
                trace.clone(),
                SymmetryConfig::full(),
            ));
        });
        let pspec = spec.clone().with_profile(true);
        g.bench_units(&format!("replay_profile_on/{name}"), steps, || {
            black_box(dejavu::replay_run(
                &pspec,
                trace.clone(),
                SymmetryConfig::full(),
            ));
        });
        // Neutrality guard: a perturbed profiled replay would make the
        // numbers above meaningless (it would be timing a different run).
        let (prof, report, desyncs) =
            dejavu::profile_replay(&spec, trace.clone(), SymmetryConfig::full());
        assert!(desyncs.is_empty(), "{name}: profiled replay desynced");
        assert_eq!(
            report.fingerprint, rec.fingerprint,
            "{name}: profiler perturbed the replay"
        );
        // Telemetry sidecar: the profile summary rides along with the
        // replay metrics so the perf trajectory keeps the hot-method view.
        let tspec = spec.clone().with_telemetry();
        let (rep, _) = dejavu::replay_run(&tspec, trace.clone(), SymmetryConfig::full());
        let doc = codec::Json::obj(vec![
            ("profile", prof.summary_json(5)),
            ("replay", dejavu::run_metrics_json(&rep, None)),
        ]);
        g.attach_telemetry(name, doc);
    }
    g.finish();
}
