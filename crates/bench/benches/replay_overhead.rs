//! E7 — replay-time comparison: DejaVu (replays the whole thread package,
//! no per-dispatch mapping) vs Russinovich-Cogswell (map lookup on every
//! dispatch) vs Instant Replay (per-access order enforcement with
//! yield-and-retry).

use bench::bench_spec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dejavu::SymmetryConfig;

fn replay_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay_overhead");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for name in ["racy_counter", "producer_consumer", "bank_transfer"] {
        let (spec, natives) = bench_spec(name, 2);
        let (_, dj_trace) = dejavu::record_run(&spec, natives, SymmetryConfig::full(), false);
        let (_, rc_trace) = baselines::rc_record(&spec, natives);
        let (_, ir_trace) = baselines::ir_record(&spec, natives);
        g.bench_with_input(BenchmarkId::new("dejavu_replay", name), name, |b, _| {
            b.iter(|| dejavu::replay_run(&spec, dj_trace.clone(), SymmetryConfig::full()))
        });
        g.bench_with_input(BenchmarkId::new("rc_replay", name), name, |b, _| {
            b.iter(|| baselines::rc_replay(&spec, rc_trace.clone()))
        });
        g.bench_with_input(BenchmarkId::new("instant_replay_replay", name), name, |b, _| {
            b.iter(|| baselines::ir_replay(&spec, ir_trace.clone()))
        });
    }
    g.finish();
}

criterion_group!(benches, replay_overhead);
criterion_main!(benches);
