//! E7 — replay-time comparison: DejaVu (replays the whole thread package,
//! no per-dispatch mapping) vs Russinovich-Cogswell (map lookup on every
//! dispatch) vs Instant Replay (per-access order enforcement with
//! yield-and-retry).

use bench::bench_spec;
use bench::harness::{black_box, Group};
use dejavu::SymmetryConfig;

fn main() {
    let mut g = Group::new("replay_overhead");
    g.sample_size(10);
    for name in ["racy_counter", "producer_consumer", "bank_transfer"] {
        let (spec, natives) = bench_spec(name, 2);
        let (_, dj_trace) = dejavu::record_run(&spec, natives, SymmetryConfig::full(), false);
        let (_, rc_trace) = baselines::rc_record(&spec, natives);
        let (_, ir_trace) = baselines::ir_record(&spec, natives);
        g.bench(&format!("dejavu_replay/{name}"), || {
            black_box(dejavu::replay_run(
                &spec,
                dj_trace.clone(),
                SymmetryConfig::full(),
            ));
        });
        g.bench(&format!("rc_replay/{name}"), || {
            black_box(baselines::rc_replay(&spec, rc_trace.clone()));
        });
        g.bench(&format!("instant_replay_replay/{name}"), || {
            black_box(baselines::ir_replay(&spec, ir_trace.clone()));
        });
        // One telemetry-enabled replay per workload for the telemetry
        // sidecar file (the sink is proven perturbation-free).
        let tspec = spec.clone().with_telemetry();
        let (rep, _) = dejavu::replay_run(&tspec, dj_trace.clone(), SymmetryConfig::full());
        g.attach_telemetry(name, dejavu::run_metrics_json(&rep, None));
    }
    g.finish();
}
