//! Interpreter dispatch bench: quickened (superinstruction / devirtualized
//! QOp stream) vs generic dispatch, side by side, on the Figure-1 hot-loop
//! workload. Reports steps/sec via the `work_units` hint plus record and
//! replay overhead in both modes, so `BENCH_interp.json` captures the
//! whole fused-vs-unfused story in one file.
//!
//! The attached TELEMETRY document comes from *environment-default* specs:
//! running this bench under `DJVM_NO_QUICKEN=1` and again without it must
//! produce byte-identical telemetry (fingerprints, counters, trace stats)
//! — `scripts/verify.sh` cmp's the two files to enforce neutrality in CI.

use bench::harness::{black_box, Group};
use bench::bench_spec;
use dejavu::SymmetryConfig;

const WORKLOAD: &str = "fig1_hot";

fn main() {
    let mut g = Group::new("interp");
    g.sample_size(10);

    let (spec, natives) = bench_spec(WORKLOAD, 1);
    let spec_q = spec.clone().with_quicken(true);
    let spec_g = spec.clone().with_quicken(false);

    // The step count is deterministic and mode-independent (the
    // cycle-accounting invariant); it is the work_units hint that turns
    // median ns into steps/sec.
    let steps_q = dejavu::passthrough_run(&spec_q, natives).counters.steps;
    let steps_g = dejavu::passthrough_run(&spec_g, natives).counters.steps;
    assert_eq!(
        steps_q, steps_g,
        "quickening changed the step count — the invariant is broken"
    );

    g.bench_units(&format!("steps_quickened/{WORKLOAD}"), steps_q, || {
        black_box(dejavu::passthrough_run(&spec_q, natives));
    });
    g.bench_units(&format!("steps_generic/{WORKLOAD}"), steps_g, || {
        black_box(dejavu::passthrough_run(&spec_g, natives));
    });

    // Record overhead, both modes.
    g.bench_units(&format!("record_quickened/{WORKLOAD}"), steps_q, || {
        black_box(dejavu::record_run(
            &spec_q,
            natives,
            SymmetryConfig::full(),
            false,
        ));
    });
    g.bench_units(&format!("record_generic/{WORKLOAD}"), steps_g, || {
        black_box(dejavu::record_run(
            &spec_g,
            natives,
            SymmetryConfig::full(),
            false,
        ));
    });

    // Replay overhead, both modes (trace decode + forced switches).
    let (_, trace_q) = dejavu::record_run(&spec_q, natives, SymmetryConfig::full(), true);
    let (_, trace_g) = dejavu::record_run(&spec_g, natives, SymmetryConfig::full(), true);
    g.bench_units(&format!("replay_quickened/{WORKLOAD}"), steps_q, || {
        black_box(dejavu::replay_run(
            &spec_q,
            trace_q.clone(),
            SymmetryConfig::full(),
        ));
    });
    g.bench_units(&format!("replay_generic/{WORKLOAD}"), steps_g, || {
        black_box(dejavu::replay_run(
            &spec_g,
            trace_g.clone(),
            SymmetryConfig::full(),
        ));
    });

    // Telemetry from an env-default-mode record: verify.sh runs this bench
    // with and without DJVM_NO_QUICKEN=1 and byte-compares the two files.
    let tspec = spec.clone().with_telemetry();
    let (rec, trace) = dejavu::record_run(&tspec, natives, SymmetryConfig::full(), true);
    g.attach_telemetry(WORKLOAD, dejavu::run_metrics_json(&rec, Some(&trace.stats())));

    g.finish();
}
