//! Interpreter dispatch bench: the full three-tier matrix — generic
//! dispatch, quickened (superinstruction / devirtualized QOp stream), and
//! tier-2 megablock execution of hot loops — side by side on the Figure-1
//! hot-loop workload. Reports steps/sec via the `work_units` hint plus
//! record and replay overhead per tier, so `BENCH_interp.json` captures
//! the whole tiering story in one file; the `meta` block records the
//! tier-up counts and tier-over-tier speedups so a silent failure to
//! promote shows up in CI.
//!
//! The `steps_*` rows measure raw dispatch speed under
//! [`FingerprintMode::Coarse`] (the cheap production setting): in `Full`
//! mode every tier is bound by the same serially-dependent per-pc hash
//! chain, which caps any dispatch win at ~1.1×. The `steps_fullfp_*` rows
//! document that hash-bound regime; record/replay rows keep the default
//! `Full` mode, as the accuracy machinery does.
//!
//! The attached TELEMETRY document comes from *environment-default*
//! quickening with tier-2 pinned off: running this bench under
//! `DJVM_NO_QUICKEN=1` (or `DJVM_NO_MEGA=1`) and again without it must
//! produce byte-identical telemetry (fingerprints, counters, trace stats)
//! — `scripts/verify.sh` cmp's the files to enforce neutrality in CI.
//! (Tier-2 is pinned off for this document only because the `compile.mega`
//! ring event — itself an observer artifact — would legitimately differ
//! across the ablation.)

use bench::bench_spec;
use bench::harness::{black_box, Group};
use dejavu::SymmetryConfig;
use djvm::FingerprintMode;

const WORKLOAD: &str = "fig1_hot";

fn main() {
    let mut g = Group::new("interp");
    g.sample_size(10);

    let (spec, natives) = bench_spec(WORKLOAD, 1);
    let spec_m = spec.clone().with_quicken(true).with_mega(true);
    let spec_q = spec.clone().with_quicken(true).with_mega(false);
    let spec_g = spec.clone().with_quicken(false).with_mega(false);

    // The step count is deterministic and tier-independent (the
    // cycle-accounting invariant); it is the work_units hint that turns
    // median ns into steps/sec.
    let rep_m = dejavu::passthrough_run(&spec_m, natives);
    let steps_m = rep_m.counters.steps;
    let steps_q = dejavu::passthrough_run(&spec_q, natives).counters.steps;
    let steps_g = dejavu::passthrough_run(&spec_g, natives).counters.steps;
    assert_eq!(
        steps_q, steps_g,
        "quickening changed the step count — the invariant is broken"
    );
    assert_eq!(
        steps_m, steps_q,
        "megablocks changed the step count — the invariant is broken"
    );
    assert!(
        rep_m.mega.tier_ups > 0,
        "fig1_hot never tiered up — the mega bench rows would measure tier 1"
    );

    // Raw dispatch speed (Coarse fingerprint), then the hash-bound Full
    // regime for comparison.
    for (mode, tag) in [
        (FingerprintMode::Coarse, ""),
        (FingerprintMode::Full, "fullfp_"),
    ] {
        for (tier, s, steps) in [
            ("mega", &spec_m, steps_m),
            ("quickened", &spec_q, steps_q),
            ("generic", &spec_g, steps_g),
        ] {
            let s = s.clone().with_fingerprint(mode);
            g.bench_units(&format!("steps_{tag}{tier}/{WORKLOAD}"), steps, || {
                black_box(dejavu::passthrough_run(&s, natives));
            });
        }
    }

    // Record overhead, all tiers (Full fingerprint — the real pipeline).
    for (tier, s, steps) in [
        ("mega", &spec_m, steps_m),
        ("quickened", &spec_q, steps_q),
        ("generic", &spec_g, steps_g),
    ] {
        g.bench_units(&format!("record_{tier}/{WORKLOAD}"), steps, || {
            black_box(dejavu::record_run(
                s,
                natives,
                SymmetryConfig::full(),
                false,
            ));
        });
    }

    // Replay overhead, all tiers (trace decode + forced switches). Each
    // tier replays its own recording; the traces are byte-identical anyway.
    let (_, trace_m) = dejavu::record_run(&spec_m, natives, SymmetryConfig::full(), true);
    let (_, trace_q) = dejavu::record_run(&spec_q, natives, SymmetryConfig::full(), true);
    let (_, trace_g) = dejavu::record_run(&spec_g, natives, SymmetryConfig::full(), true);
    for (tier, s, steps, trace) in [
        ("mega", &spec_m, steps_m, &trace_m),
        ("quickened", &spec_q, steps_q, &trace_q),
        ("generic", &spec_g, steps_g, &trace_g),
    ] {
        g.bench_units(&format!("replay_{tier}/{WORKLOAD}"), steps, || {
            black_box(dejavu::replay_run(s, trace.clone(), SymmetryConfig::full()));
        });
    }

    // Tier-up evidence plus derived speedups for the sidecar. The mega
    // speedup is the ISSUE's bar (≥2× over quickened on fig1_hot, raw
    // dispatch); milli-x fixed point keeps the JSON integer-only.
    let ratio_mx = |a: &str, b: &str| match (
        g.median_ns(&format!("{a}/{WORKLOAD}")),
        g.median_ns(&format!("{b}/{WORKLOAD}")),
    ) {
        (Some(x), Some(y)) if y > 0 => codec::Json::UInt(x * 1000 / y),
        _ => codec::Json::UInt(0),
    };
    let speedups = codec::Json::obj(vec![
        (
            "mega_over_quickened_mx",
            ratio_mx("steps_quickened", "steps_mega"),
        ),
        (
            "quickened_over_generic_mx",
            ratio_mx("steps_generic", "steps_quickened"),
        ),
        (
            "fullfp_mega_over_quickened_mx",
            ratio_mx("steps_fullfp_quickened", "steps_fullfp_mega"),
        ),
    ]);
    g.meta(&format!("mega_{WORKLOAD}"), rep_m.mega.to_json());
    // Under Coarse (what the steps_mega row times) the closed-form stepper
    // carries the batches — capture its stats so the sidecar proves the
    // fast path ran rather than the step-by-step fallback.
    let rep_mc = dejavu::passthrough_run(
        &spec_m.clone().with_fingerprint(FingerprintMode::Coarse),
        natives,
    );
    assert!(
        rep_mc.mega.closed_iters > 0,
        "coarse-mode bench never hit the closed form: {:?}",
        rep_mc.mega
    );
    g.meta(&format!("mega_{WORKLOAD}_coarse"), rep_mc.mega.to_json());
    g.meta("speedups", speedups);

    // Telemetry from an env-default-quicken record with tier-2 pinned off:
    // verify.sh runs this bench under DJVM_NO_QUICKEN=1 / DJVM_NO_MEGA=1
    // and byte-compares the resulting files against the default run.
    let tspec = spec.clone().with_telemetry().with_mega(false);
    let (rec, trace) = dejavu::record_run(&tspec, natives, SymmetryConfig::full(), true);
    g.attach_telemetry(
        WORKLOAD,
        dejavu::run_metrics_json(&rec, Some(&trace.stats())),
    );

    g.finish();
}
