//! E4 — record-mode time overhead ("precision", paper §1): the same
//! workload executed uninstrumented (passthrough), under the DejaVu
//! recorder, and under each baseline recorder. The paper's qualitative
//! claim is that switch-only logging is cheap while critical-event and
//! content logging are not; the bench quantifies the shape.

use bench::harness::{black_box, Group};
use bench::{bench_spec, BENCH_WORKLOADS};
use dejavu::SymmetryConfig;

fn main() {
    let mut g = Group::new("record_overhead");
    g.sample_size(10);
    for name in BENCH_WORKLOADS {
        let (spec, natives) = bench_spec(name, 1);
        g.bench(&format!("passthrough/{name}"), || {
            black_box(dejavu::passthrough_run(&spec, natives));
        });
        g.bench(&format!("dejavu_record/{name}"), || {
            black_box(dejavu::record_run(
                &spec,
                natives,
                SymmetryConfig::full(),
                false,
            ));
        });
        g.bench(&format!("rc_record/{name}"), || {
            black_box(baselines::rc_record(&spec, natives));
        });
        g.bench(&format!("instant_replay_record/{name}"), || {
            black_box(baselines::ir_record(&spec, natives));
        });
        g.bench(&format!("readlog_record/{name}"), || {
            black_box(baselines::readlog_record(&spec, natives));
        });
        // One telemetry-enabled record per workload: per-event-kind trace
        // byte accounting, histograms and phase spans, written alongside
        // the timing file (telemetry is proven not to change the run).
        let tspec = spec.clone().with_telemetry();
        let (rec, trace) = dejavu::record_run(&tspec, natives, SymmetryConfig::full(), true);
        g.attach_telemetry(name, dejavu::run_metrics_json(&rec, Some(&trace.stats())));
    }
    g.finish();
}
