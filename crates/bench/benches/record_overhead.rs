//! E4 — record-mode time overhead ("precision", paper §1): the same
//! workload executed uninstrumented (passthrough), under the DejaVu
//! recorder, and under each baseline recorder. The paper's qualitative
//! claim is that switch-only logging is cheap while critical-event and
//! content logging are not; the bench quantifies the shape.

use bench::{bench_spec, BENCH_WORKLOADS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dejavu::SymmetryConfig;

fn record_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_overhead");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for name in BENCH_WORKLOADS {
        let (spec, natives) = bench_spec(name, 1);
        g.bench_with_input(BenchmarkId::new("passthrough", name), name, |b, _| {
            b.iter(|| dejavu::passthrough_run(&spec, natives))
        });
        g.bench_with_input(BenchmarkId::new("dejavu_record", name), name, |b, _| {
            b.iter(|| dejavu::record_run(&spec, natives, SymmetryConfig::full(), false))
        });
        g.bench_with_input(BenchmarkId::new("rc_record", name), name, |b, _| {
            b.iter(|| baselines::rc_record(&spec, natives))
        });
        g.bench_with_input(BenchmarkId::new("instant_replay_record", name), name, |b, _| {
            b.iter(|| baselines::ir_record(&spec, natives))
        });
        g.bench_with_input(BenchmarkId::new("readlog_record", name), name, |b, _| {
            b.iter(|| baselines::readlog_record(&spec, natives))
        });
    }
    g.finish();
}

criterion_group!(benches, record_overhead);
criterion_main!(benches);
