//! Fleet service throughput: N≥64 concurrent sessions each doing
//! record → replay → seek → divergence-check → close against a live
//! fleet server, reported as sessions/sec plus p99 request latency in
//! `BENCH_FLEET.json` (the `meta` object carries the latency quantiles
//! and the fingerprint-equality verdict).
//!
//! Environment knobs:
//!
//! * `FLEET_ADDR=<host:port>` — drive an externally started server (the
//!   verify.sh fleet stage does this); default spins one up in-process.
//! * `FLEET_SESSIONS=<n>` — concurrent session count (default 64).
//! * `FLEET_WORKLOAD=<name>` — workload per session (default fig1_ab).
//!
//! Fingerprint discipline: the drive compares every concurrently-hosted
//! record/replay fingerprint against a single-session local run of the
//! same workload/seed; any mismatch aborts the bench with a non-zero
//! exit, because a fleet that perturbs its sessions has no throughput
//! worth reporting.

use bench::harness::Group;
use codec::Json;
use fleet::{bench::drive, FleetConfig, FleetServer};

fn main() {
    let sessions: usize = std::env::var("FLEET_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let workload = std::env::var("FLEET_WORKLOAD").unwrap_or_else(|_| "fig1_ab".to_string());
    let threads = 16.min(sessions.max(1));

    // External server if FLEET_ADDR is set, else an in-process one.
    let local = match std::env::var("FLEET_ADDR") {
        Ok(_) => None,
        Err(_) => Some(
            FleetServer::start("127.0.0.1:0", FleetConfig::default())
                .expect("bind ephemeral fleet port"),
        ),
    };
    let addr =
        std::env::var("FLEET_ADDR").unwrap_or_else(|_| local.as_ref().unwrap().addr().to_string());

    let mut g = Group::new("FLEET");
    g.sample_size(3);

    let mut last = None;
    g.bench_units(
        &format!("record_replay_seek/{workload}/x{sessions}"),
        sessions as u64,
        || {
            let report = drive(&addr, sessions, &workload, threads).expect("fleet drive");
            assert!(
                report.fingerprints_match,
                "fleet fingerprints diverged from single-session ground truth: {:?}",
                report.mismatches
            );
            last = Some(report);
        },
    );

    let report = last.expect("at least one sample ran");
    g.meta("sessions", Json::UInt(report.sessions as u64));
    g.meta("requests_per_drive", Json::UInt(report.requests));
    g.meta("resident_peak", Json::UInt(report.resident_peak));
    g.meta("fingerprints_match", Json::Bool(report.fingerprints_match));
    g.meta(
        "p50_request_ns",
        Json::UInt(report.latency.quantile(500).unwrap_or(0)),
    );
    g.meta(
        "p95_request_ns",
        Json::UInt(report.latency.quantile(950).unwrap_or(0)),
    );
    g.meta(
        "p99_request_ns",
        Json::UInt(report.latency.quantile(990).unwrap_or(0)),
    );
    // The full latency histogram rides along as telemetry sidecar.
    g.attach_telemetry("request_latency_ns", report.latency.to_json());
    g.finish();

    if let Some(server) = local {
        server.trigger_shutdown();
        server.join();
    }
}
