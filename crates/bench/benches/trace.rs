//! E16 — the block-structured trace pipeline.
//!
//! Three questions, all against the fig1 workload family under the
//! standard bench spec (the same preemption quantum every other bench
//! uses, so the traces here are the traces those benches record):
//!
//! 1. **bytes/event** — how much smaller is the block format than the
//!    flat format? (Acceptance bar: ≥3× on the family aggregate.) A
//!    side-note row repeats the size accounting under `sized_spec`'s
//!    long quantum, where switches are ~12× rarer and carry ~7 bits of
//!    timer jitter each — the honest worst case for any trace codec.
//! 2. **codec latency** — what do block encode/decode cost next to the
//!    flat codec?
//! 3. **seek latency** — how does checkpoint-indexed
//!    `TimeTravel::seek_logical` over a block trace compare to a
//!    full-replay seek (single checkpoint at step 0), and how many trace
//!    events does each actually replay?
//!
//! The telemetry sidecar carries the size accounting (per-workload and
//! family aggregate, with per-block compression permille) and the
//! `SeekStats` of both seek strategies, so EXPERIMENTS.md E16 is
//! regenerated from machine-readable output.

use baselines::TimeTravel;
use bench::harness::{black_box, Group};
use bench::{bench_spec, sized_spec};
use codec::Json;
use dejavu::{
    encode_trace, record_run, BlockFile, SymmetryConfig, Trace, TraceFormat, DEFAULT_BLOCK_BUDGET,
};

/// The fig1 workload family (ROADMAP figure-1 reproductions).
const FIG1_FAMILY: &[&str] = &["fig1_ab", "fig1_hot", "fig1_cd"];

/// Flat/block size accounting for one recorded trace.
fn size_row(trace: &Trace) -> (u64, u64, u64, Json) {
    let flat = trace.encoded();
    let block = encode_trace(trace, TraceFormat::Block, DEFAULT_BLOCK_BUDGET);
    let bf = BlockFile::parse(block.clone()).expect("own encoding parses");
    let events = bf.event_count();
    let doc = Json::obj(vec![
        ("block", bf.stats().to_json()),
        ("block_bytes", Json::UInt(block.len() as u64)),
        ("events", Json::UInt(events)),
        ("flat_bytes", Json::UInt(flat.len() as u64)),
        (
            "flat_milli_bytes_per_event",
            Json::UInt(if events == 0 {
                0
            } else {
                flat.len() as u64 * 1000 / events
            }),
        ),
    ]);
    (flat.len() as u64, block.len() as u64, events, doc)
}

fn main() {
    let mut g = Group::new("trace");
    g.sample_size(10);

    let mut family_flat = 0u64;
    let mut family_block = 0u64;
    let mut family_events = 0u64;
    let mut per_workload: Vec<(String, Json)> = Vec::new();

    for name in FIG1_FAMILY {
        let (spec, natives) = bench_spec(name, 1);
        let (_rec, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
        let flat = trace.encoded();
        let block = encode_trace(&trace, TraceFormat::Block, DEFAULT_BLOCK_BUDGET);
        let (flat_bytes, block_bytes, events, doc) = size_row(&trace);

        g.bench_units(&format!("encode_flat/{name}"), events, || {
            black_box(trace.encoded());
        });
        g.bench_units(&format!("encode_block/{name}"), events, || {
            black_box(encode_trace(
                &trace,
                TraceFormat::Block,
                DEFAULT_BLOCK_BUDGET,
            ));
        });
        g.bench_units(&format!("decode_flat/{name}"), events, || {
            black_box(Trace::decode(&flat).expect("valid flat trace"));
        });
        g.bench_units(&format!("decode_block/{name}"), events, || {
            black_box(
                BlockFile::parse(block.clone())
                    .expect("valid block trace")
                    .to_trace()
                    .expect("all blocks decode"),
            );
        });

        family_flat += flat_bytes;
        family_block += block_bytes;
        family_events += events;
        per_workload.push((name.to_string(), doc));
    }

    // Family aggregate: the ≥3× bytes/event acceptance bar is on this
    // number (ratio ×1000, exact integer arithmetic).
    let ratio_permille = family_flat * 1000 / family_block.max(1);
    println!(
        "trace/family: flat {family_flat} B, block {family_block} B, \
         {family_events} events, ratio {}.{:03}x",
        ratio_permille / 1000,
        ratio_permille % 1000
    );

    // Side-note: the same accounting under the long `sized_spec` quantum.
    // Not part of the acceptance aggregate (459-event traces cannot
    // amortize per-block overhead), reported so the dependence on switch
    // density is visible rather than hidden.
    {
        let (spec, natives) = sized_spec("fig1_hot", 1);
        let (_rec, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
        let (f, b, e, doc) = size_row(&trace);
        let rp = f * 1000 / b.max(1);
        println!(
            "trace/sized fig1_hot: flat {f} B, block {b} B, {e} events, ratio {}.{:03}x",
            rp / 1000,
            rp % 1000
        );
        per_workload.push(("fig1_hot_sized".to_string(), doc));
    }

    // Seek latency: checkpoint-indexed block seek vs full-replay seek on
    // the longest family member. Both TimeTravels replay the same trace
    // to the end, then each bench iteration travels back to a logical
    // time near the end and forward to the end again (position-invariant
    // across iterations). The indexed session restores the checkpoint at
    // the nearest block boundary and replays one block span; the legacy
    // session restores its only checkpoint (step 0) and replays the
    // whole prefix. A finer budget than the size-oriented default keeps
    // many boundaries in a ~5.6k-event trace — the granularity knob a
    // debugging-oriented recording would pick.
    const SEEK_BUDGET: u32 = 512;
    let (spec, natives) = bench_spec("fig1_hot", 1);
    let (_rec, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
    let block = encode_trace(&trace, TraceFormat::Block, SEEK_BUDGET);
    let bf = BlockFile::parse(block).expect("valid block trace");
    let boundaries = bf.boundaries();
    let end_logical = trace.switches.iter().map(|s| s.nyp).sum::<u64>();
    let t_back = end_logical.saturating_sub(8);

    // Replay regenerates native outcomes from the trace, so the replay
    // VMs need no native bindings; timer and clock are never consulted.
    let boot = || {
        djvm::Vm::boot(
            spec.program.clone(),
            spec.vm.clone(),
            Box::new(djvm::FixedTimer::new(1 << 30)),
            Box::new(djvm::CycleClock::new(0, 100)),
        )
        .expect("boot")
    };
    // Indexed: interval effectively off so block boundaries are the only
    // checkpoint keys; legacy: neither interval nor boundaries, i.e. the
    // single step-0 checkpoint of a flat, unindexed trace.
    let mut indexed = TimeTravel::new_indexed(
        boot(),
        bf.to_trace().expect("all blocks decode"),
        SymmetryConfig::full(),
        u64::MAX,
        boundaries.clone(),
    );
    let mut full = TimeTravel::new(boot(), trace.clone(), SymmetryConfig::full(), u64::MAX);
    indexed.advance(u64::MAX);
    full.advance(u64::MAX);

    let indexed_stats = indexed.seek_logical(t_back);
    let full_stats = full.seek_logical(t_back);
    println!(
        "trace/seek to {t_back} of {end_logical} ({} blocks): indexed replayed {} events \
         ({} steps), full replayed {} events ({} steps)",
        boundaries.len(),
        indexed_stats.events_replayed,
        indexed_stats.steps_replayed,
        full_stats.events_replayed,
        full_stats.steps_replayed
    );

    g.bench("seek_indexed/fig1_hot", || {
        indexed.seek_logical(end_logical);
        black_box(indexed.seek_logical(t_back));
    });
    g.bench("seek_full_replay/fig1_hot", || {
        full.seek_logical(end_logical);
        black_box(full.seek_logical(t_back));
    });

    let seek_json = |s: &baselines::SeekStats| {
        Json::obj(vec![
            ("checkpoint_logical", Json::UInt(s.checkpoint_logical)),
            ("events_replayed", Json::UInt(s.events_replayed)),
            ("final_logical", Json::UInt(s.final_logical)),
            ("steps_replayed", Json::UInt(s.steps_replayed)),
            ("target_logical", Json::UInt(s.target_logical)),
        ])
    };
    g.attach_telemetry(
        "family",
        Json::obj(vec![
            ("block_bytes", Json::UInt(family_block)),
            (
                "block_milli_bytes_per_event",
                Json::UInt(family_block * 1000 / family_events.max(1)),
            ),
            ("events", Json::UInt(family_events)),
            ("flat_bytes", Json::UInt(family_flat)),
            (
                "flat_milli_bytes_per_event",
                Json::UInt(family_flat * 1000 / family_events.max(1)),
            ),
            ("ratio_permille", Json::UInt(ratio_permille)),
        ]),
    );
    g.attach_telemetry(
        "seek",
        Json::obj(vec![
            ("blocks", Json::UInt(boundaries.len() as u64)),
            ("end_logical", Json::UInt(end_logical)),
            ("full_replay", seek_json(&full_stats)),
            ("indexed", seek_json(&indexed_stats)),
        ]),
    );
    for (name, doc) in per_workload {
        g.attach_telemetry(&name, doc);
    }
    g.finish();
}
