//! Shared helpers for the benchmark harness and the `experiments` binary.

pub mod harness;

use dejavu::ExecSpec;
use djvm::Vm;

/// Standard spec used across benches: moderate preemption rate.
pub fn bench_spec(name: &str, seed: u64) -> (ExecSpec, fn(&mut Vm)) {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload {name}"));
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 211;
    s.timer_jitter = 60;
    (s, w.natives)
}

/// Realistic (long) preemption quantum for trace-size comparisons.
pub fn sized_spec(name: &str, seed: u64) -> (ExecSpec, fn(&mut Vm)) {
    let (mut s, n) = bench_spec(name, seed);
    s.timer_base = 2001;
    s.timer_jitter = 500;
    (s, n)
}

/// The workloads used for timing benches (bounded runtimes).
pub const BENCH_WORKLOADS: &[&str] = &[
    "racy_counter",
    "producer_consumer",
    "gc_churn",
    "bank_transfer",
    "server_loop",
];
