//! A tiny `std::time::Instant` bench harness (the criterion replacement).
//!
//! Hermetic-build discipline: the platform owns its measurement machinery.
//! Each bench target builds a [`Group`], registers closures, and calls
//! [`Group::finish`], which prints one human line per bench and emits a
//! `BENCH_<group>.json` file so the perf trajectory is machine-readable.
//!
//! Environment knobs:
//!
//! * `BENCH_SMOKE=1` — one warmup-free iteration per bench (the CI smoke
//!   run in `scripts/verify.sh`),
//! * `BENCH_SAMPLES=<n>` — override the per-bench sample count,
//! * `BENCH_DIR=<path>` — where to write `BENCH_<group>.json`
//!   (default: current directory).

use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier benches wrap their outputs in.
pub use std::hint::black_box;

/// Timing summary of one registered bench.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub samples: u64,
    /// Sum of all measured samples (ns) — the cross-machine-comparable
    /// total cost of the measurement phase.
    pub total_ns: u64,
    pub mean_ns: u64,
    pub median_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Work units (e.g. interpreter steps) one iteration performs;
    /// 0 when the bench declared no hint.
    pub work_units: u64,
    /// Derived units/second from the median sample; 0 when no
    /// `work_units` hint was given.
    pub throughput: u64,
}

/// A named group of benches sharing sampling configuration.
pub struct Group {
    name: String,
    sample_size: u64,
    warm_up: Duration,
    smoke: bool,
    results: Vec<BenchResult>,
    telemetry: Vec<(String, codec::Json)>,
    meta: Vec<(String, codec::Json)>,
}

impl Group {
    pub fn new(name: &str) -> Self {
        let smoke = std::env::var("BENCH_SMOKE").map_or(false, |v| v != "0");
        let sample_size = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self {
            name: name.to_string(),
            sample_size,
            warm_up: Duration::from_millis(300),
            smoke,
            results: Vec::new(),
            telemetry: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Attach a group-level metadata key embedded in `BENCH_<group>.json`
    /// as a `"meta"` object (canonical, sorted keys) — derived figures a
    /// timing row cannot carry, like a fleet run's p99 request latency or
    /// a fingerprint-equality verdict. Last write per key wins.
    pub fn meta(&mut self, key: &str, value: codec::Json) -> &mut Self {
        self.meta.retain(|(k, _)| k != key);
        self.meta.push((key.to_string(), value));
        self
    }

    /// Median of an already-measured row, for derived `meta` figures
    /// (e.g. a tier-over-tier speedup ratio).
    pub fn median_ns(&self, name: &str) -> Option<u64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        if std::env::var("BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Measure `f`: warm up for the configured duration, then time
    /// `sample_size` individual calls. In smoke mode: one call, no warmup.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_units(name, 0, f)
    }

    /// Like [`Group::bench`], with a `work_units` hint: the number of
    /// work units (e.g. interpreter steps) one call of `f` performs.
    /// The result then carries a derived `throughput` in units/second,
    /// comparable across machines in a way raw nanoseconds are not.
    pub fn bench_units<F: FnMut()>(&mut self, name: &str, work_units: u64, mut f: F) -> &mut Self {
        // `.max(1)` guards the mean/median divisions below against a
        // BENCH_SAMPLES=0 override.
        let samples = if self.smoke {
            1
        } else {
            self.sample_size.max(1)
        };
        if !self.smoke {
            let start = Instant::now();
            while start.elapsed() < self.warm_up {
                f();
            }
        }
        let mut times: Vec<u64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let t0 = Instant::now();
            f();
            times.push(t0.elapsed().as_nanos() as u64);
        }
        times.sort_unstable();
        let median_ns = times[times.len() / 2];
        let throughput = if work_units == 0 {
            0
        } else {
            // units/sec from the median sample; never divide by zero
            // even for sub-nanosecond (clock-granularity) samples.
            (work_units as u128 * 1_000_000_000 / median_ns.max(1) as u128) as u64
        };
        let result = BenchResult {
            name: name.to_string(),
            samples,
            total_ns: times.iter().sum::<u64>(),
            mean_ns: times.iter().sum::<u64>() / samples,
            median_ns,
            min_ns: times[0],
            max_ns: times[times.len() - 1],
            work_units,
            throughput,
        };
        print!(
            "{}/{}: median {} (mean {}, min {}, max {}, n={})",
            self.name,
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.mean_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.max_ns),
            result.samples,
        );
        if throughput > 0 {
            print!(" [{throughput} units/s]");
        }
        println!();
        self.results.push(result);
        self
    }

    /// The JSON document `finish` writes (one line).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"group\":\"{}\",\"results\":[", self.name);
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"samples\":{},\"total_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"work_units\":{},\"throughput\":{}}}",
                r.name.replace('"', "'"),
                r.samples,
                r.total_ns,
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.work_units,
                r.throughput,
            ));
        }
        out.push(']');
        if !self.meta.is_empty() {
            let mut doc = codec::Json::Obj(self.meta.clone());
            doc.canonicalize();
            out.push_str(&format!(",\"meta\":{doc}"));
        }
        out.push('}');
        out
    }

    /// Attach a named telemetry document (e.g. from
    /// `dejavu::run_metrics_json`) to this group; `finish` writes them all
    /// as one canonical `TELEMETRY_<group>.json` next to the timing file.
    pub fn attach_telemetry(&mut self, name: &str, doc: codec::Json) -> &mut Self {
        self.telemetry.push((name.to_string(), doc));
        self
    }

    /// The canonical telemetry document (`None` if nothing was attached).
    pub fn telemetry_json(&self) -> Option<codec::Json> {
        if self.telemetry.is_empty() {
            return None;
        }
        let runs = codec::Json::Obj(self.telemetry.clone());
        let mut doc = codec::Json::obj(vec![
            ("group", codec::Json::Str(self.name.clone())),
            ("runs", runs),
        ]);
        doc.canonicalize();
        Some(doc)
    }

    /// Print the JSON summary and write `BENCH_<group>.json` (plus
    /// `TELEMETRY_<group>.json` when telemetry was attached).
    pub fn finish(&self) {
        let json = self.to_json();
        println!("{json}");
        let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| ".".into());
        let _ = std::fs::create_dir_all(&dir);
        let path = format!("{dir}/BENCH_{}.json", self.name);
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("warning: could not write {path}: {e}");
        }
        if let Some(doc) = self.telemetry_json() {
            let tpath = format!("{dir}/TELEMETRY_{}.json", self.name);
            if let Err(e) = std::fs::write(&tpath, format!("{doc}\n")) {
                eprintln!("warning: could not write {tpath}: {e}");
            }
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_group_measures_and_serializes() {
        // Force deterministic single-sample behaviour regardless of env.
        let mut g = Group {
            name: "unit".into(),
            sample_size: 3,
            warm_up: Duration::ZERO,
            smoke: false,
            results: Vec::new(),
            telemetry: Vec::new(),
            meta: Vec::new(),
        };
        let mut n = 0u64;
        g.bench("count", || {
            n = black_box(n + 1);
        });
        assert_eq!(g.results.len(), 1);
        let r = &g.results[0];
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        let json = g.to_json();
        assert!(json.starts_with("{\"group\":\"unit\""));
        assert!(json.contains("\"name\":\"count\""));
        // The emitted document is valid JSON by our own parser.
        assert!(codec::Json::parse(&json).is_ok());
        // No telemetry attached → no telemetry doc.
        assert!(g.telemetry_json().is_none());
        // Attached telemetry serializes canonically (sorted keys).
        g.attach_telemetry(
            "run",
            codec::Json::obj(vec![
                ("b", codec::Json::UInt(2)),
                ("a", codec::Json::UInt(1)),
            ]),
        );
        let doc = g.telemetry_json().unwrap();
        let s = doc.to_string();
        assert_eq!(s, doc.to_canonical_string(), "already canonical");
        assert!(s.contains(r#""runs":{"run":{"a":1,"b":2}}"#), "{s}");
    }

    #[test]
    fn work_units_yield_throughput_and_total() {
        let mut g = Group {
            name: "unit".into(),
            sample_size: 2,
            warm_up: Duration::ZERO,
            smoke: false,
            results: Vec::new(),
            telemetry: Vec::new(),
            meta: Vec::new(),
        };
        g.bench_units("spin", 1_000, || {
            std::thread::sleep(Duration::from_micros(50));
        });
        let r = &g.results[0];
        assert!(r.throughput > 0, "work_units hint must derive throughput");
        assert_eq!(r.work_units, 1_000);
        assert!(r.total_ns >= r.max_ns, "total covers all samples");
        let json = g.to_json();
        assert!(json.contains("\"throughput\":"), "{json}");
        assert!(json.contains("\"total_ns\":"), "{json}");
        assert!(codec::Json::parse(&json).is_ok());
        // Benches without a hint report 0 throughput, not a division.
        g.bench("nohint", || {});
        assert_eq!(g.results[1].throughput, 0);
    }

    #[test]
    fn meta_embeds_canonically_in_the_bench_document() {
        let mut g = Group {
            name: "unit".into(),
            sample_size: 1,
            warm_up: Duration::ZERO,
            smoke: false,
            results: Vec::new(),
            telemetry: Vec::new(),
            meta: Vec::new(),
        };
        g.bench("noop", || {});
        g.meta("p99_request_ns", codec::Json::UInt(123));
        g.meta("fingerprints_match", codec::Json::Bool(true));
        g.meta("p99_request_ns", codec::Json::UInt(456)); // last write wins
        let json = g.to_json();
        let doc = codec::Json::parse(&json).expect("valid json");
        let meta = doc.field("meta").expect("meta object");
        assert_eq!(meta.get("p99_request_ns").unwrap().as_u64().unwrap(), 456);
        assert!(meta.get("fingerprints_match").unwrap().as_bool().unwrap());
        // Canonical: keys sorted regardless of insertion order.
        assert!(
            json.contains(r#""meta":{"fingerprints_match":true,"p99_request_ns":456}"#),
            "{json}"
        );
    }

    #[test]
    fn zero_sample_override_is_guarded() {
        let mut g = Group {
            name: "unit".into(),
            sample_size: 0, // as if BENCH_SAMPLES=0
            warm_up: Duration::ZERO,
            smoke: false,
            results: Vec::new(),
            telemetry: Vec::new(),
            meta: Vec::new(),
        };
        g.bench("never_zero", || {});
        assert_eq!(g.results[0].samples, 1);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
