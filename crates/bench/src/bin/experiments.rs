//! Regenerates every quantitative table of EXPERIMENTS.md.
//!
//! Run with `cargo run -p bench --bin experiments --release`.
//! Wall-clock numbers are machine-dependent; shapes (who wins, by what
//! factor) are the reproduction target.

use baselines::{ir_record, ir_replay, rc_record, rc_replay, trace_size_comparison, TimeTravel};
use bench::{bench_spec, sized_spec};
use dejavu::{
    passthrough_run, record_replay, record_run, replay_run, Ablation, ExecSpec, SymmetryConfig,
};
use djvm::{Program, ProgramBuilder, Ty, Vm};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    println!("# DejaVu reproduction — experiment tables\n");
    e1_fig1_ab();
    e2_fig1_cd();
    e4_record_overhead();
    e5_trace_sizes();
    e6_accuracy_matrix();
    e7_replay_costs();
    e8_reflection();
    e10_ablations();
    e13_scalability();
    e14_checkpoints();
}

fn e1_fig1_ab() {
    println!("## E1 — Figure 1 (A)/(B): preemption-timing non-determinism\n");
    println!("| printed value | runs (of 60 seeds) | replay accurate |");
    println!("|---|---|---|");
    let mut outcomes: BTreeMap<String, (u32, bool)> = BTreeMap::new();
    for seed in 0..60u64 {
        let mut s = ExecSpec::new(workloads::fig1::fig1_ab()).with_seed(seed);
        s.timer_base = 11;
        s.timer_jitter = 5;
        let (rec, _rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        let e = outcomes
            .entry(rec.output.trim().to_string())
            .or_insert((0, true));
        e.0 += 1;
        e.1 &= ok;
    }
    for (v, (n, ok)) in &outcomes {
        println!("| {v} | {n} | {} |", if *ok { "yes" } else { "NO" });
    }
    println!();
}

fn e2_fig1_cd() {
    println!("## E2 — Figure 1 (C)/(D): wall-clock-driven branch + wait/notify\n");
    let mut wait_runs = 0;
    let mut skip_runs = 0;
    let mut all_ok = true;
    for seed in 0..60u64 {
        let mut s = ExecSpec::new(workloads::fig1::fig1_cd()).with_seed(seed);
        s.clock_noise = 40;
        let (rec, _rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        all_ok &= ok;
        if rec.output.lines().next() == Some("1") {
            wait_runs += 1;
        } else {
            skip_runs += 1;
        }
    }
    println!("case (C) wait-branch runs: {wait_runs}/60");
    println!("case (D) skip-branch runs: {skip_runs}/60");
    println!(
        "replay accurate on all: {}\n",
        if all_ok { "yes" } else { "NO" }
    );
}

fn e4_record_overhead() {
    println!("## E4 — record-mode overhead (precision)\n");
    println!("| workload | passthrough | dejavu record | overhead | RC record | IR record | read-log record |");
    println!("|---|---|---|---|---|---|---|");
    for name in bench::BENCH_WORKLOADS {
        let (s, natives) = bench_spec(name, 1);
        let time = |f: &mut dyn FnMut()| {
            // best of 3
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    f();
                    t.elapsed()
                })
                .min()
                .unwrap()
        };
        let base = time(&mut || {
            passthrough_run(&s, natives);
        });
        let rec = time(&mut || {
            record_run(&s, natives, SymmetryConfig::full(), false);
        });
        let rc = time(&mut || {
            rc_record(&s, natives);
        });
        let ir = time(&mut || {
            ir_record(&s, natives);
        });
        let rl = time(&mut || {
            baselines::readlog_record(&s, natives);
        });
        println!(
            "| {name} | {base:.2?} | {rec:.2?} | {:+.1}% | {rc:.2?} | {ir:.2?} | {rl:.2?} |",
            (rec.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
        );
    }
    println!();
}

fn e5_trace_sizes() {
    println!("## E5 — trace size per scheme (same execution, realistic quantum)\n");
    println!("| workload | steps | DejaVu bytes (switch recs) | RC bytes (dispatches) | InstantReplay bytes (accesses) | read-log bytes (reads) |");
    println!("|---|---|---|---|---|---|");
    for name in bench::BENCH_WORKLOADS {
        let (s, natives) = sized_spec(name, 5);
        let r = trace_size_comparison(name, &s, natives);
        println!(
            "| {} | {} | {} ({}) | {} ({}) | {} ({}) | {} ({}) |",
            r.workload,
            r.steps,
            r.dejavu_bytes,
            r.dejavu_switches,
            r.rc_bytes,
            r.rc_dispatches,
            r.ir_bytes,
            r.ir_accesses,
            r.readlog_bytes,
            r.readlog_reads
        );
    }
    println!();
}

fn e6_accuracy_matrix() {
    println!("## E6 — replay accuracy (fingerprint + state digest + output)\n");
    println!("| workload | seeds tested | accurate |");
    println!("|---|---|---|");
    for w in workloads::registry() {
        let mut ok_count = 0;
        let seeds = [1u64, 7, 23, 41];
        for &seed in &seeds {
            let mut s = ExecSpec::new((w.build)()).with_seed(seed);
            s.timer_base = 53;
            s.timer_jitter = 19;
            let (_, _, ok) = record_replay(&s, w.natives, SymmetryConfig::full());
            ok_count += ok as u32;
        }
        println!(
            "| {} | {} | {}/{} |",
            w.name,
            seeds.len(),
            ok_count,
            seeds.len()
        );
    }
    println!();
}

fn e7_replay_costs() {
    println!("## E7 — replay cost: replaying the thread package vs steering it\n");
    println!("| workload | dejavu replay | RC replay | RC map lookups | IR replay | IR delays |");
    println!("|---|---|---|---|---|---|");
    for name in ["racy_counter", "producer_consumer", "bank_transfer"] {
        let (s, natives) = bench_spec(name, 2);
        let (_, dj_trace) = record_run(&s, natives, SymmetryConfig::full(), false);
        let (_, rc_trace) = rc_record(&s, natives);
        let (_, ir_trace) = ir_record(&s, natives);
        let t0 = Instant::now();
        let _ = replay_run(&s, dj_trace, SymmetryConfig::full());
        let dj = t0.elapsed();
        let t0 = Instant::now();
        let (_, lookups, _) = rc_replay(&s, rc_trace);
        let rc = t0.elapsed();
        let t0 = Instant::now();
        let (_, delays, _) = ir_replay(&s, ir_trace);
        let ir = t0.elapsed();
        println!("| {name} | {dj:.2?} | {rc:.2?} | {lookups} | {ir:.2?} | {delays} |");
    }
    println!();
}

fn e8_reflection() {
    println!("## E8 — remote reflection (Figure 3)\n");
    let (s, natives) = bench_spec("racy_counter", 5);
    let (rec, trace) = record_run(&s, natives, SymmetryConfig::full(), true);
    let program = std::sync::Arc::clone(&s.program);
    let mut vm = Vm::boot(
        program.clone(),
        s.vm.clone(),
        Box::new(djvm::FixedTimer::new(1 << 30)),
        Box::new(djvm::CycleClock::new(0, 100)),
    )
    .unwrap();
    let mut replayer = dejavu::DejaVuReplayer::new(trace, SymmetryConfig::full());
    {
        use djvm::hook::ExecHook;
        replayer.on_init(&mut vm);
    }
    djvm::interp::run(&mut vm, &mut replayer, 15_000);
    let before = vm.state_digest();
    let (reads, interp_steps, queries) = {
        let mem = reflect::CountingMemory::new(reflect::LocalVmMemory::new(&vm));
        let mut refl = reflect::RemoteReflector::new(program.clone(), &mem);
        refl.map_boot_method_table(vm.boot_image.method_table);
        let mut q = 0;
        for mid in 0..program.methods.len() as u32 {
            for off in 0..4 {
                let _ = refl.line_number_of(mid, off);
                q += 1;
            }
        }
        (mem.reads(), refl.steps, q)
    };
    let unperturbed = vm.state_digest() == before;
    djvm::interp::run(&mut vm, &mut replayer, u64::MAX >> 1);
    let resumed_ok = vm.fingerprint.digest() == rec.fingerprint;
    println!("queries executed: {queries}");
    println!(
        "remote word reads: {reads} ({:.1}/query)",
        reads as f64 / queries as f64
    );
    println!("tool-side interpreted bytecodes: {interp_steps}");
    println!(
        "application VM perturbed: {}",
        if unperturbed { "no" } else { "YES" }
    );
    println!(
        "replay resumed accurately after inspection: {}\n",
        if resumed_ok { "yes" } else { "NO" }
    );
}

fn e10_ablations() {
    println!("## E10 — symmetry ablations (observer workload, 6 seeds each)\n");
    println!("| symmetry disabled | replay diverged on some seed |");
    println!("|---|---|");
    // observer workload inline (same as the ablation test's)
    fn observer() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb
            .class("G")
            .static_field("count", Ty::Int)
            .static_field("hashmix", Ty::Int)
            .build();
        let cls = pb.class("O").field("x", Ty::Int).build();
        let worker = pb.method("worker", 0, 3).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(300).ge().if_nz("done");
            a.get_static(g, 0).store(1);
            a.iconst(0).store(2);
            a.label("delay");
            a.load(2).iconst(2).ge().if_nz("dd");
            a.load(2).iconst(1).add().store(2);
            a.goto("delay");
            a.label("dd");
            a.load(1).iconst(1).add().put_static(g, 0);
            a.get_static(g, 1)
                .new(cls)
                .identity_hash()
                .bxor()
                .put_static(g, 1);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.ret();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.spawn(worker, 0).store(0);
            a.spawn(worker, 0).store(1);
            a.load(0).join();
            a.load(1).join();
            a.get_static(g, 0).print();
            a.get_static(g, 1).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }
    // Deep varying-depth recursion with hash observation: the workload
    // whose stack sits near the boundary when helpers run (the only
    // channel through which stack-growth asymmetry is observable).
    fn deep_stack() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("acc", Ty::Int).build();
        let cls = pb.class("O").field("x", Ty::Int).build();
        let spin = pb.method("spin", 1, 2).code(|a| {
            a.iconst(0).store(1);
            a.label("top");
            a.load(1).load(0).ge().if_nz("done");
            a.get_static(g, 0)
                .new(cls)
                .identity_hash()
                .bxor()
                .put_static(g, 0);
            a.load(1).iconst(1).add().store(1);
            a.goto("top");
            a.label("done");
            a.ret();
        });
        let down = pb.func("down", 1, 1).code(|a| {
            a.load(0).if_z("base");
            a.load(0).iconst(1).sub().call(1);
            a.ret_val();
            a.label("base");
            a.iconst(40).call(spin);
            a.iconst(0).ret_val();
        });
        assert_eq!(down, 1);
        let worker = pb.method("worker", 0, 2).code(|a| {
            a.iconst(1).store(0);
            a.label("top");
            a.load(0).iconst(16).gt().if_nz("done");
            a.load(0).call(down).pop();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.ret();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.spawn(worker, 0).store(0);
            a.spawn(worker, 0).store(1);
            a.load(0).join();
            a.load(1).join();
            a.get_static(g, 0).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }
    for abl in Ablation::ALL {
        let mut diverged = false;
        'seeds: for seed in 0..8u64 {
            let stacks: &[usize] = if abl == Ablation::EagerStackGrowth {
                &[88, 96, 104, 112, 128]
            } else {
                &[256]
            };
            for &stack in stacks {
                let mut s = if abl == Ablation::EagerStackGrowth {
                    ExecSpec::new(deep_stack()).with_seed(seed)
                } else {
                    ExecSpec::new(observer()).with_seed(seed)
                };
                s.timer_base = 31;
                s.timer_jitter = 11;
                s.vm.initial_stack = stack;
                let (_, _, ok) = record_replay(&s, |_| {}, SymmetryConfig::ablate(abl));
                if !ok {
                    diverged = true;
                    break 'seeds;
                }
            }
        }
        println!(
            "| {} | {} |",
            abl.name(),
            if diverged { "yes" } else { "no (!)" }
        );
    }
    println!("| (none — full symmetry) | no |\n");
}

fn e13_scalability() {
    println!("## E13 — scalability: threads and preemption rate\n");
    fn racy_n(nthreads: i64, iters: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("count", Ty::Int).build();
        let worker = pb.method("worker", 0, 2).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(iters).ge().if_nz("done");
            a.get_static(g, 0).iconst(1).add().put_static(g, 0);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.ret();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.iconst(nthreads).new_array_ref().store(0);
            a.iconst(0).store(1);
            a.label("spawn");
            a.load(1).iconst(nthreads).ge().if_nz("spawned");
            a.load(0).load(1).spawn(worker, 0).astore_ref();
            a.load(1).iconst(1).add().store(1);
            a.goto("spawn");
            a.label("spawned");
            a.iconst(0).store(1);
            a.label("join");
            a.load(1).iconst(nthreads).ge().if_nz("joined");
            a.load(0).load(1).aload_ref().join();
            a.load(1).iconst(1).add().store(1);
            a.goto("join");
            a.label("joined");
            a.get_static(g, 0).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }
    println!("| threads | steps | trace bytes | switches | accurate |");
    println!("|---|---|---|---|---|");
    for n in [2i64, 4, 8, 16] {
        let mut s = ExecSpec::new(racy_n(n, 300)).with_seed(7);
        s.timer_base = 101;
        s.timer_jitter = 30;
        let (rec, trace) = record_run(&s, |_| {}, SymmetryConfig::full(), false);
        let (rep, desyncs) = replay_run(&s, trace.clone(), SymmetryConfig::full());
        let ok = rec.matches(&rep) && desyncs.is_empty();
        println!(
            "| {n} | {} | {} | {} | {} |",
            rec.counters.steps,
            trace.stats().total_bytes,
            trace.stats().switch_count,
            if ok { "yes" } else { "NO" }
        );
    }
    println!("\n| preempt quantum (cycles) | trace bytes | bytes/1k steps |");
    println!("|---|---|---|");
    for q in [50u64, 200, 1000, 5000] {
        let mut s = ExecSpec::new(racy_n(4, 300)).with_seed(7);
        s.timer_base = q;
        s.timer_jitter = q / 4;
        let (rec, trace) = record_run(&s, |_| {}, SymmetryConfig::full(), false);
        let b = trace.stats().total_bytes;
        println!(
            "| {q} | {b} | {:.2} |",
            b as f64 * 1000.0 / rec.counters.steps as f64
        );
    }
    println!();
}

fn e14_checkpoints() {
    println!("## E14 — checkpointing (Igor/Boothe) on top of DejaVu replay\n");
    let (s, natives) = bench_spec("racy_counter", 11);
    let (_, trace) = record_run(&s, natives, SymmetryConfig::full(), false);
    println!("| checkpoint interval (steps) | checkpoints | storage bytes | reverse-seek re-exec steps |");
    println!("|---|---|---|---|");
    for interval in [1_000u64, 5_000, 20_000] {
        let vm = Vm::boot(
            std::sync::Arc::clone(&s.program),
            s.vm.clone(),
            Box::new(djvm::FixedTimer::new(1 << 30)),
            Box::new(djvm::CycleClock::new(0, 100)),
        )
        .unwrap();
        let mut tt = TimeTravel::new(vm, trace.clone(), SymmetryConfig::full(), interval);
        tt.seek(30_000);
        tt.seek(15_500); // one reverse seek
        println!(
            "| {interval} | {} | {} | {} |",
            tt.checkpoints.len(),
            tt.storage_bytes(),
            tt.reexecuted
        );
    }
    println!();
}
