//! End-to-end execution of the whole workload registry, plus the E6
//! replay-accuracy matrix: every workload × several seeds, record ==
//! replay, under the full fingerprint.

use dejavu::{passthrough_run, record_replay, ExecSpec, SymmetryConfig};
use djvm::VmStatus;

fn spec_for(w: &workloads::Workload, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 53;
    s.timer_jitter = 19;
    s
}

#[test]
fn every_workload_halts_cleanly() {
    for w in workloads::registry() {
        let s = spec_for(&w, 1);
        let r = passthrough_run(&s, w.natives);
        assert_eq!(
            r.status,
            VmStatus::Halted,
            "{} did not halt: {:?} (output {:?})",
            w.name,
            r.status,
            r.output
        );
        assert!(!r.output.is_empty(), "{} should print something", w.name);
    }
}

#[test]
fn e6_replay_accuracy_matrix() {
    // The paper's accuracy requirement is absolute; our matrix asserts
    // 100% across the suite.
    for w in workloads::registry() {
        for seed in [1u64, 7, 23] {
            let s = spec_for(&w, seed);
            let (rec, rep, ok) = record_replay(&s, w.natives, SymmetryConfig::full());
            assert!(
                ok,
                "{} seed {} diverged:\n rec: {:?} fp {:#x}\n rep: {:?} fp {:#x}",
                w.name, seed, rec.output, rec.fingerprint, rep.output, rep.fingerprint
            );
        }
    }
}

#[test]
fn invariants_hold_under_any_schedule() {
    // Schedule-independent outputs (correct synchronization) stay fixed
    // across seeds even though interleavings differ.
    let fixed_expect: &[(&str, &str)] = &[
        ("bank_transfer", "600\n"),       // 6 accounts x 100
        ("dining_philosophers", "200\n"), // 5 philosophers x 40 meals
        ("producer_consumer", "1770\n"),  // sum 0..59
        ("matrix_sum", "392960\n"),       // sum of 3i+1, i<512
        ("barrier", "100\n"),             // 4 threads x 25 rounds
    ];
    for (name, expect) in fixed_expect {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == *name)
            .unwrap();
        for seed in [2u64, 11, 31] {
            let s = spec_for(&w, seed);
            let r = passthrough_run(&s, w.natives);
            assert_eq!(
                r.output.lines().next().unwrap_or(""),
                expect.trim_end(),
                "{name} seed {seed}"
            );
        }
    }
}

#[test]
fn racy_workloads_vary_across_seeds() {
    for name in ["racy_counter", "fig1_ab"] {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let mut outputs = std::collections::BTreeSet::new();
        for seed in 0..16 {
            let mut s = spec_for(&w, seed);
            s.timer_base = 23;
            s.timer_jitter = 9;
            outputs.insert(passthrough_run(&s, w.natives).output);
        }
        assert!(outputs.len() > 1, "{name} should vary, got {outputs:?}");
    }
}

#[test]
fn fig1_ab_exhibits_both_paper_outcomes() {
    // The figure's two printed values are 8 (A) and 0 (B); sweep timer
    // seeds/periods until both appear.
    let mut saw = std::collections::BTreeSet::new();
    'outer: for base in [5u64, 7, 11, 17, 29, 47, 83, 131] {
        for seed in 0..24 {
            let mut s = ExecSpec::new(workloads::fig1::fig1_ab()).with_seed(seed);
            s.timer_base = base;
            s.timer_jitter = base / 2;
            let r = passthrough_run(&s, |_| {});
            saw.insert(r.output.trim().to_string());
            if saw.contains("8") && saw.contains("0") {
                break 'outer;
            }
        }
    }
    assert!(saw.contains("8"), "case (A) should appear: {saw:?}");
    assert!(saw.contains("0"), "case (B) should appear: {saw:?}");
}

#[test]
fn fig1_cd_branches_both_ways_and_replays() {
    let mut waited = false;
    let mut skipped = false;
    for seed in 0..40 {
        let mut s = ExecSpec::new(workloads::fig1::fig1_cd()).with_seed(seed);
        s.clock_noise = 40; // Date() varies a lot
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "seed {seed}");
        assert_eq!(rec.output, rep.output);
        let took: i64 = rec.output.lines().next().unwrap().parse().unwrap();
        if took == 1 {
            waited = true;
        } else {
            skipped = true;
        }
        if waited && skipped {
            break;
        }
    }
    assert!(waited, "case (C) — the wait branch — should appear");
    assert!(skipped, "case (D) — the skip branch — should appear");
}
