//! Stress scenarios for the trace-corpus CI stage: workloads picked to
//! hit the perturbation channels the fig1 family and [`crate::suite`]
//! under-exercise — a lock convoy on one hot monitor, allocation storms
//! that force frequent collections, native-call-heavy request loops,
//! wall-clock spinning (a clock-read–dominated data stream), and deep
//! mutual recursion with allocation at depth.
//!
//! Every program prints something and halts, and every one replays
//! accurately under the full symmetry config — the corpus stage records
//! them once and then holds every future build to those fingerprints.

use djvm::{NativeOutcome, Program, ProgramBuilder, Ty, Vm};

/// `nthreads` threads hammer one shared monitor with a delay loop *inside*
/// the critical section — the classic convoy: every preemption inside the
/// lock stalls the whole pack. Prints the final count (= nthreads×rounds).
pub fn lock_convoy(nthreads: i64, rounds: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("count", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(rounds).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        // held-lock delay loop: widens the convoy window
        a.iconst(0).store(1);
        a.label("held");
        a.load(1).iconst(4).ge().if_nz("held_done");
        a.load(1).iconst(1).add().store(1);
        a.goto("held");
        a.label("held_done");
        a.get_static(g, 1).iconst(1).add().put_static(g, 1);
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(0).put_static(g, 1);
        a.iconst(nthreads).new_array_ref().store(0);
        a.iconst(0).store(1);
        a.label("spawn");
        a.load(1).iconst(nthreads).ge().if_nz("spawned");
        a.load(0).load(1).spawn(worker, 0).astore_ref();
        a.load(1).iconst(1).add().store(1);
        a.goto("spawn");
        a.label("spawned");
        a.iconst(0).store(1);
        a.label("join");
        a.load(1).iconst(nthreads).ge().if_nz("joined");
        a.load(0).load(1).aload_ref().join();
        a.load(1).iconst(1).add().store(1);
        a.goto("join");
        a.label("joined");
        a.get_static(g, 1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Allocation storm: two threads build ref-array "pages" of fresh nodes,
/// retain a rolling window of one page in eight, and drop the rest —
/// forcing frequent collections while identity hashes (allocation-order
/// observers) fold into shared state. Heavier and more array-shaped than
/// [`crate::suite::gc_churn`]'s list churn.
pub fn gc_pressure(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("mix", Ty::Int).build();
    let node = pb.class("Node").field("v", Ty::Int).build();
    // locals: 0=i, 1=page(ref arr), 2=kept(ref arr), 3=j, 4=node
    let worker = pb.method("worker", 0, 5).code(|a| {
        a.null().store(2);
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        // page = new Ref[6]; fill with fresh nodes
        a.iconst(6).new_array_ref().store(1);
        a.iconst(0).store(3);
        a.label("fill");
        a.load(3).iconst(6).ge().if_nz("filled");
        a.new(node).store(4);
        a.load(4).load(0).put_field(0);
        a.load(1).load(3).load(4).astore_ref();
        a.load(3).iconst(1).add().store(3);
        a.goto("fill");
        a.label("filled");
        // observe allocation order through one identity hash per page
        a.get_static(g, 0)
            .load(1)
            .iconst(0)
            .aload_ref()
            .identity_hash()
            .bxor()
            .put_static(g, 0);
        // int-array garbage alongside the ref pages
        a.iconst(24).new_array_int().pop();
        // retain every 8th page; everything else is immediate garbage
        a.load(0).iconst(8).rem().if_nz("drop");
        a.load(1).store(2);
        a.label("drop");
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        // keep `kept` live to the end so retention actually matters
        a.load(2).null().ref_eq().if_nz("end");
        a.get_static(g, 0)
            .load(2)
            .iconst(0)
            .aload_ref()
            .get_field(0)
            .add()
            .put_static(g, 0);
        a.label("end");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Native-call-heavy: two threads pull values from a non-deterministic
/// native source in a tight loop (one native outcome per iteration, with
/// frequent callbacks) and fold them into a monitor-guarded checksum.
/// The data stream is dominated by `DataRec::Native` records.
pub fn native_heavy(calls: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("sum", Ty::Int)
        .static_field("pulses", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let pull = pb.native("pull", 1, true);
    // callback: a "pulse" event delivered mid-native-call
    let on_pulse = pb.method("onPulse", 1, 1).code(|a| {
        a.get_static(g, 2).load(0).add().put_static(g, 2);
        a.ret();
    });
    let _ = on_pulse;
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(calls).ge().if_nz("done");
        a.load(0).native_call(pull, 1).store(1);
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 1).load(1).add().put_static(g, 1);
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(0).put_static(g, 1);
        a.iconst(0).put_static(g, 2);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 1).print();
        a.get_static(g, 2).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Register the native `native_heavy` declares: a seeded xorshift source,
/// wall-clock-salted (non-deterministic), with a callback every fifth id.
pub fn native_heavy_natives(vm: &mut Vm) {
    let pull = vm
        .program
        .native_id_by_name("pull")
        .expect("native_heavy program");
    let on_pulse = vm
        .program
        .method_id_by_name("onPulse")
        .expect("native_heavy program");
    let mut state = 0x9E3779B97F4A7C15u64;
    vm.natives.register(
        pull,
        Box::new(move |ctx| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state = state.wrapping_add(ctx.now_millis as u64);
            let id = (state >> 21) as i64 & 0xFFF;
            let mut out = NativeOutcome::value(id);
            if id % 5 == 0 {
                out.callbacks.push(djvm::CallbackReq {
                    method: on_pulse,
                    args: vec![id % 13],
                });
            }
            out
        }),
    );
}

/// Clock spinner: two threads read the wall clock in a tight loop and fold
/// the reads into shared state — a data stream that is almost entirely
/// `DataRec::Clock` records, the §2.2 channel at maximum density.
pub fn clock_spin(reads: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("acc", Ty::Int).build();
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(reads).ge().if_nz("done");
        a.get_static(g, 0)
            .iconst(31)
            .mul()
            .now()
            .iconst(997)
            .rem()
            .add()
            .put_static(g, 0);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Deep *mutual* recursion with allocation at depth: `even`/`odd` call
/// each other down to the base case, allocating a small array every other
/// level — so stack growth and GC pressure land mid-descent, not at a
/// convenient loop head. Two threads sweep depths up to `max_depth`.
pub fn recursion_storm(max_depth: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("acc", Ty::Int).build();
    // Mutual recursion needs both ids before either body assembles;
    // method ids are allocated sequentially, so the first two methods of
    // this builder are 0 and 1 (asserted below, like suite::deep_recursion).
    let even = pb.func("even", 1, 2).code(|a| {
        a.load(0).if_z("base");
        a.iconst(4).new_array_int().pop(); // allocation at depth
        a.load(0).iconst(1).sub().call(1); // -> odd
        a.iconst(1).add().ret_val();
        a.label("base");
        a.iconst(0).ret_val();
    });
    let odd = pb.func("odd", 1, 2).code(|a| {
        a.load(0).if_z("base");
        a.load(0).iconst(1).sub().call(0); // -> even
        a.iconst(1).add().ret_val();
        a.label("base");
        a.iconst(0).ret_val();
    });
    assert_eq!((even, odd), (0, 1));
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(1).store(0);
        a.label("top");
        a.load(0).iconst(max_depth).gt().if_nz("done");
        a.get_static(g, 0).load(0).call(even).add().put_static(g, 0);
        a.load(0).iconst(13).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stress_programs_verify() {
        let progs = [
            lock_convoy(3, 20),
            gc_pressure(20),
            native_heavy(10),
            clock_spin(20),
            recursion_storm(40),
        ];
        for p in &progs {
            assert!(p.methods.iter().all(|m| m.compiled.is_some()));
        }
    }
}
