//! The four execution examples of the paper's **Figure 1**.
//!
//! * (A)/(B): the *same* program whose printed value depends purely on
//!   where the preemptive thread switch lands — `print y` yields **8**
//!   when T1's writes complete before T2 reads (A), and **0** when T2 runs
//!   first (B).
//! * (C)/(D): `y = Date()` steers a branch; the true branch executes
//!   `o1.wait()` (causing a deterministic thread switch to T2, which
//!   notifies), the false branch does not — so the wall clock decides the
//!   whole downstream switch structure.

use djvm::{Program, ProgramBuilder, Ty};

/// Figure 1 (A)/(B): switch-timing non-determinism.
///
/// Shared statics `x = 0, y = 0`. The main thread (T1) spawns T2 and then
/// executes `y = 1; x = y * 2` with yield points interleaved; T2 executes
/// `y = x * 2; y = y * 2; print y`. Depending on preemption, the program
/// prints `8` (T1 first — case A) or `0` (T2 first — case B), exactly the
/// two outcomes of the figure (intermediate interleavings can also print
/// `2` or `4`, which the figure's prose elides).
pub fn fig1_ab() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("x", Ty::Int)
        .static_field("y", Ty::Int)
        .build();
    // T2: y = x * 2; y = y * 2; print y;
    let t2 = pb.method("t2", 0, 1).code(|a| {
        a.line(10).get_static(g, 0).iconst(2).mul().put_static(g, 1);
        // a delay loop so T2's two statements can be separated by a switch
        a.iconst(0).store(0);
        a.label("d");
        a.load(0).iconst(2).ge().if_nz("dd");
        a.load(0).iconst(1).add().store(0);
        a.goto("d");
        a.label("dd");
        a.line(11).get_static(g, 1).iconst(2).mul().put_static(g, 1);
        a.line(12).get_static(g, 1).print();
        a.ret();
    });
    // T1 (main): spawn T2, then y = 1; x = y * 2; join.
    let m = pb.method("main", 0, 2).code(|a| {
        a.line(1).iconst(0).put_static(g, 0);
        a.line(2).iconst(0).put_static(g, 1);
        a.line(3).spawn(t2, 0).store(0);
        // delay loop: gives the timer a chance to preempt T1 mid-sequence
        a.iconst(0).store(1);
        a.label("d");
        a.load(1).iconst(2).ge().if_nz("dd");
        a.load(1).iconst(1).add().store(1);
        a.goto("d");
        a.label("dd");
        a.line(4).iconst(1).put_static(g, 1); // y = 1
        a.line(5).get_static(g, 1).iconst(2).mul().put_static(g, 0); // x = y*2
        a.line(6).load(0).join();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Figure 1 (A)/(B) scaled up: the same two-thread shared-static shape,
/// with the delay loops' trip count raised from 2 to `delay` so the
/// interpreter hot loop dominates. This is the steps/sec benchmark body
/// for the quickened-dispatch comparison (`BENCH_interp.json`): the loop
/// is exactly the fusible pattern mix (`Load+Const+Cmp+If`,
/// `Load+Const+Alu`, `Const+Store`, `Goto`) the quickening pass targets.
pub fn fig1_ab_scaled(delay: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("x", Ty::Int)
        .static_field("y", Ty::Int)
        .build();
    let t2 = pb.method("t2", 0, 1).code(|a| {
        a.line(10).get_static(g, 0).iconst(2).mul().put_static(g, 1);
        a.iconst(0).store(0);
        a.label("d");
        a.load(0).iconst(delay).ge().if_nz("dd");
        a.load(0).iconst(1).add().store(0);
        a.goto("d");
        a.label("dd");
        a.line(11).get_static(g, 1).iconst(2).mul().put_static(g, 1);
        a.line(12).get_static(g, 1).print();
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.line(1).iconst(0).put_static(g, 0);
        a.line(2).iconst(0).put_static(g, 1);
        a.line(3).spawn(t2, 0).store(0);
        a.iconst(0).store(1);
        a.label("d");
        a.load(1).iconst(delay).ge().if_nz("dd");
        a.load(1).iconst(1).add().store(1);
        a.goto("d");
        a.label("dd");
        a.line(4).iconst(1).put_static(g, 1);
        a.line(5).get_static(g, 1).iconst(2).mul().put_static(g, 0);
        a.line(6).load(0).join();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Figure 1 (C)/(D): wall-clock-dependent branch deciding a wait/notify
/// switch.
///
/// `y = Date() % 30; if (y < 15) o1.wait();` — T2 sets `y = x + 100` and
/// notifies. Afterwards `y = y * 2; print y`. The program prints whether
/// the wait branch was taken (1 = case C, 0 = case D) and then `y` — the
/// clock value decides the entire downstream switch structure.
pub fn fig1_cd() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("o1", Ty::Ref)
        .static_field("x", Ty::Int)
        .static_field("y", Ty::Int)
        .static_field("tookWait", Ty::Int)
        .build();
    let lock_cls = pb.class("Object").build();
    // T2: y = x + 100; o1.notify();
    let t2 = pb.method("t2", 0, 0).code(|a| {
        a.line(20).get_static(g, 0).monitor_enter();
        a.line(21)
            .get_static(g, 1)
            .iconst(100)
            .add()
            .put_static(g, 2);
        a.line(22).get_static(g, 0).notify();
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.line(1).new(lock_cls).put_static(g, 0);
        a.line(2).iconst(3).put_static(g, 1); // x = 3
        a.line(3).now().iconst(30).rem().put_static(g, 2); // y = Date() % 30
        a.line(4).spawn(t2, 0).store(0);
        a.line(5).get_static(g, 0).monitor_enter();
        a.get_static(g, 2).iconst(15).lt().if_z("no_wait");
        a.iconst(1).put_static(g, 3); // record: the wait branch was taken
        a.line(6).get_static(g, 0).wait().pop(); // o1.wait()
        a.label("no_wait");
        a.get_static(g, 0).monitor_exit();
        a.line(7).load(0).join();
        a.line(8).get_static(g, 2).iconst(2).mul().put_static(g, 2); // y = y*2
        a.line(9).get_static(g, 3).print(); // 1 = case (C), 0 = case (D)
        a.get_static(g, 2).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_programs_verify() {
        let a = fig1_ab();
        let c = fig1_cd();
        assert!(a.methods.iter().all(|m| m.compiled.is_some()));
        assert!(c.methods.iter().all(|m| m.compiled.is_some()));
    }

    #[test]
    fn fig1_ab_has_line_numbers_for_reflection() {
        let p = fig1_ab();
        let main = p.method(p.entry);
        assert!(main.lines.contains(&4) && main.lines.contains(&5));
    }
}
