//! The workload suite: server-style multithreaded guest programs.
//!
//! These are the programs the experiments run under passthrough / record /
//! replay / baseline instrumentation. Each exercises a different mix of
//! the paper's non-determinism sources and perturbation channels:
//! preemptive races, monitor contention, wait/notify, timed events,
//! native calls, GC pressure, allocation-order observation, deep stacks.

use djvm::{NativeOutcome, Program, ProgramBuilder, Ty, Vm};

/// Two threads race unsynchronized read-modify-writes on a shared counter,
/// with yield points inside the window (the lost-update race of Fig. 1).
pub fn racy_counter(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("count", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        a.get_static(g, 0).store(1);
        a.iconst(0).store(2);
        a.label("delay");
        a.load(2).iconst(3).ge().if_nz("delay_done");
        a.load(2).iconst(1).add().store(2);
        a.goto("delay");
        a.label("delay_done");
        a.load(1).iconst(1).add().put_static(g, 0);
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// `nthreads` tellers move money between `naccts` accounts under
/// per-account monitors (ordered acquisition). The total is invariant —
/// printed at the end — while the transfer pattern is schedule-dependent.
pub fn bank_transfer(nthreads: i64, naccts: i64, transfers: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("accts", Ty::Ref) // ref array of Account
        .static_field("mix", Ty::Int)
        .build();
    let acct = pb.class("Account").field("balance", Ty::Int).build();
    // locals: 0=id, 1=t, 2=from, 3=to, 4=tmp/loRef, 5=hiRef, 6=fromRef, 7=toRef
    let teller = pb.method_typed("teller", vec![Ty::Int], 8, None).code(|a| {
        a.iconst(0).store(1);
        a.label("top");
        a.load(1).iconst(transfers).ge().if_nz("done");
        a.load(1).load(0).add().iconst(naccts).rem().store(2);
        a.load(1)
            .iconst(7)
            .mul()
            .load(0)
            .add()
            .iconst(1)
            .add()
            .iconst(naccts)
            .rem()
            .store(3);
        a.load(2).load(3).eq().if_nz("next");
        // fromRef / toRef
        a.get_static(g, 0).load(2).aload_ref().store(6);
        a.get_static(g, 0).load(3).aload_ref().store(7);
        // ordered lock refs by index
        a.load(2).load(3).lt().if_nz("lo_first");
        a.load(7).store(4);
        a.load(6).store(5);
        a.goto("locked_order");
        a.label("lo_first");
        a.load(6).store(4);
        a.load(7).store(5);
        a.label("locked_order");
        a.load(4).monitor_enter();
        a.load(5).monitor_enter();
        // from.balance -= 1; to.balance += 1
        a.load(6).load(6).get_field(0).iconst(1).sub().put_field(0);
        a.load(7).load(7).get_field(0).iconst(1).add().put_field(0);
        a.load(5).monitor_exit();
        a.load(4).monitor_exit();
        a.label("next");
        a.load(1).iconst(1).add().store(1);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    // main: build accounts with balance 100 each, spawn tellers, join, print total
    let m = pb.method("main", 0, 4).code(|a| {
        a.iconst(naccts).new_array_ref().put_static(g, 0);
        a.iconst(0).store(0);
        a.label("init");
        a.load(0).iconst(naccts).ge().if_nz("init_done");
        a.new(acct).store(2);
        a.load(2).iconst(100).put_field(0);
        a.get_static(g, 0).load(0).load(2).astore_ref();
        a.load(0).iconst(1).add().store(0);
        a.goto("init");
        a.label("init_done");
        // spawn tellers, holding thread refs in a ref array
        a.iconst(nthreads).new_array_ref().store(3);
        a.iconst(0).store(0);
        a.label("spawn");
        a.load(0).iconst(nthreads).ge().if_nz("spawned");
        a.load(3).load(0).load(0).spawn(teller, 1).astore_ref();
        a.load(0).iconst(1).add().store(0);
        a.goto("spawn");
        a.label("spawned");
        a.iconst(0).store(0);
        a.label("join");
        a.load(0).iconst(nthreads).ge().if_nz("joined");
        a.load(3).load(0).aload_ref().join();
        a.load(0).iconst(1).add().store(0);
        a.goto("join");
        a.label("joined");
        // total
        a.iconst(0).store(1);
        a.iconst(0).store(0);
        a.label("sum");
        a.load(0).iconst(naccts).ge().if_nz("summed");
        a.load(1)
            .get_static(g, 0)
            .load(0)
            .aload_ref()
            .get_field(0)
            .add()
            .store(1);
        a.load(0).iconst(1).add().store(0);
        a.goto("sum");
        a.label("summed");
        a.load(1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Five dining philosophers with ordered fork acquisition (deadlock-free);
/// prints total meals eaten.
pub fn dining_philosophers(meals_each: i64) -> Program {
    let n = 5i64;
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("forks", Ty::Ref)
        .static_field("meals", Ty::Int)
        .static_field("mealsLock", Ty::Ref)
        .build();
    let fork = pb.class("Fork").build();
    // locals: 0=id, 1=meal, 2=first, 3=second, 4=firstRef, 5=secondRef
    let phil = pb
        .method_typed("philosopher", vec![Ty::Int], 6, None)
        .code(|a| {
            a.iconst(0).store(1);
            a.label("top");
            a.load(1).iconst(meals_each).ge().if_nz("done");
            // left = id, right = (id+1)%n; acquire lower index first
            a.load(0).store(2);
            a.load(0).iconst(1).add().iconst(n).rem().store(3);
            a.load(2).load(3).lt().if_nz("ordered");
            // swap fork indices via the operand stack
            a.load(2).load(3).store(2).store(3);
            a.label("ordered");
            a.get_static(g, 0).load(2).aload_ref().store(4);
            a.get_static(g, 0).load(3).aload_ref().store(5);
            a.load(4).monitor_enter();
            a.load(5).monitor_enter();
            // eat
            a.get_static(g, 2).monitor_enter();
            a.get_static(g, 1).iconst(1).add().put_static(g, 1);
            a.get_static(g, 2).monitor_exit();
            a.load(5).monitor_exit();
            a.load(4).monitor_exit();
            a.load(1).iconst(1).add().store(1);
            a.goto("top");
            a.label("done");
            a.ret();
        });
    let m = pb.method("main", 0, 3).code(|a| {
        a.iconst(n).new_array_ref().put_static(g, 0);
        a.new(fork).put_static(g, 2); // meals lock (any object)
        a.iconst(0).store(0);
        a.label("init");
        a.load(0).iconst(n).ge().if_nz("init_done");
        a.get_static(g, 0).load(0).new(fork).astore_ref();
        a.load(0).iconst(1).add().store(0);
        a.goto("init");
        a.label("init_done");
        a.iconst(n).new_array_ref().store(1);
        a.iconst(0).store(0);
        a.label("spawn");
        a.load(0).iconst(n).ge().if_nz("spawned");
        a.load(1).load(0).load(0).spawn(phil, 1).astore_ref();
        a.load(0).iconst(1).add().store(0);
        a.goto("spawn");
        a.label("spawned");
        a.iconst(0).store(0);
        a.label("join");
        a.load(0).iconst(n).ge().if_nz("joined");
        a.load(1).load(0).aload_ref().join();
        a.load(0).iconst(1).add().store(0);
        a.goto("join");
        a.label("joined");
        a.get_static(g, 1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Bounded-buffer producer/consumer with wait/notifyAll and producer
/// sleeps; prints the consumed sum.
pub fn producer_consumer(items: i64, cap: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("buf", Ty::Ref)
        .static_field("count", Ty::Int)
        .static_field("sum", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let producer = pb.method("producer", 0, 1).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(items).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.label("full");
        a.get_static(g, 2).iconst(cap).lt().if_nz("put");
        a.get_static(g, 0).wait().pop();
        a.goto("full");
        a.label("put");
        a.get_static(g, 1).get_static(g, 2).load(0).astore();
        a.get_static(g, 2).iconst(1).add().put_static(g, 2);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.load(0).iconst(7).rem().if_nz("top");
        a.iconst(2).sleep().pop();
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let consumer = pb.method("consumer", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(items).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.label("empty");
        a.get_static(g, 2).iconst(0).gt().if_nz("take");
        a.get_static(g, 0).wait().pop();
        a.goto("empty");
        a.label("take");
        a.get_static(g, 2).iconst(1).sub().put_static(g, 2);
        a.get_static(g, 1).get_static(g, 2).aload().store(1);
        a.get_static(g, 3).load(1).add().put_static(g, 3);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(cap).new_array_int().put_static(g, 1);
        a.iconst(0).put_static(g, 2);
        a.iconst(0).put_static(g, 3);
        a.spawn(producer, 0).store(0);
        a.spawn(consumer, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 3).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Readers/writers: readers count concurrent holders; a writer bumps a
/// version. Monitor-based with wait/notifyAll. Prints final version and a
/// read checksum.
pub fn readers_writers(rounds: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("readers", Ty::Int)
        .static_field("writing", Ty::Int)
        .static_field("version", Ty::Int)
        .static_field("checksum", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let reader = pb.method("reader", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(rounds).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.label("wait_w");
        a.get_static(g, 2).if_z("enter");
        a.get_static(g, 0).wait().pop();
        a.goto("wait_w");
        a.label("enter");
        a.get_static(g, 1).iconst(1).add().put_static(g, 1);
        a.get_static(g, 0).monitor_exit();
        // read section
        a.get_static(g, 3).store(1);
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 4).load(1).add().put_static(g, 4);
        a.get_static(g, 1).iconst(1).sub().put_static(g, 1);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let writer = pb.method("writer", 0, 1).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(rounds).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.label("wait_rw");
        a.get_static(g, 1).if_nz("block");
        a.get_static(g, 2).if_nz("block");
        a.goto("go");
        a.label("block");
        a.get_static(g, 0).wait().pop();
        a.goto("wait_rw");
        a.label("go");
        a.iconst(1).put_static(g, 2);
        a.get_static(g, 0).monitor_exit();
        a.get_static(g, 3).iconst(1).add().put_static(g, 3);
        a.get_static(g, 0).monitor_enter();
        a.iconst(0).put_static(g, 2);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 3).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.spawn(reader, 0).store(0);
        a.spawn(reader, 0).store(1);
        a.spawn(writer, 0).store(2);
        a.load(0).join();
        a.load(1).join();
        a.load(2).join();
        a.get_static(g, 3).print();
        a.get_static(g, 4).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Workers that sleep, take timed waits, and get interrupted — every
/// timed-event path of §2.2 in one program.
pub fn sleepy_workers() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("acc", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let sleeper = pb.method("sleeper", 1, 1).code(|a| {
        a.load(0).sleep().pop();
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).iconst(15).timed_wait().store(0);
        a.get_static(g, 1)
            .load(0)
            .add()
            .iconst(1)
            .add()
            .put_static(g, 1);
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let napper = pb.method("napper", 0, 1).code(|a| {
        a.iconst(1_000_000).sleep().store(0); // interrupted by main
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 1)
            .load(0)
            .iconst(10)
            .mul()
            .add()
            .put_static(g, 1);
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 4).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(0).put_static(g, 1);
        a.iconst(8).spawn(sleeper, 1).store(0);
        a.iconst(3).spawn(sleeper, 1).store(1);
        a.spawn(napper, 0).store(2);
        a.iconst(30).sleep().pop();
        a.load(2).interrupt();
        a.load(0).join();
        a.load(1).join();
        a.load(2).join();
        a.get_static(g, 1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Linked-list churn with garbage and identity-hash observation: GC
/// pressure interleaved with preemptive switches.
pub fn gc_churn(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("mix", Ty::Int).build();
    let node = pb
        .class("Node")
        .field("v", Ty::Int)
        .field("next", Ty::Ref)
        .build();
    let worker = pb.method("worker", 0, 4).code(|a| {
        a.null().store(1); // head
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(iters).ge().if_nz("done");
        a.new(node).store(2);
        a.load(2).load(0).put_field(0);
        a.load(2).load(1).put_field_ref(1);
        a.load(2).store(1);
        // drop the list every 16 nodes (garbage)
        a.load(0).iconst(16).rem().if_nz("keep");
        a.null().store(1);
        a.label("keep");
        // fold an identity hash into shared state
        a.get_static(g, 0)
            .load(2)
            .identity_hash()
            .bxor()
            .put_static(g, 0);
        a.iconst(12).new_array_int().pop(); // immediate garbage
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// A request-processing server: a native "network" source produces request
/// ids (non-deterministic), worker threads pull them from a monitor-
/// protected queue, process (arithmetic), and accumulate a checksum. The
/// native also occasionally issues a callback (connection event).
pub fn server_loop(requests: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("queue", Ty::Ref)
        .static_field("head", Ty::Int)
        .static_field("tail", Ty::Int)
        .static_field("doneFlag", Ty::Int)
        .static_field("checksum", Ty::Int)
        .static_field("events", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let recv = pb.native("net_recv", 1, true);
    // callback: connection event
    let on_event = pb.method("onEvent", 1, 1).code(|a| {
        a.get_static(g, 6).load(0).add().put_static(g, 6);
        a.ret();
    });
    let _ = on_event;
    // acceptor: recv() requests and enqueue
    let acceptor = pb.method("acceptor", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(requests).ge().if_nz("done");
        a.load(0).native_call(recv, 1).store(1);
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 1).get_static(g, 3).load(1).astore();
        a.get_static(g, 3).iconst(1).add().put_static(g, 3);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.get_static(g, 0).monitor_enter();
        a.iconst(1).put_static(g, 4);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    // worker: dequeue and process until done and queue drained
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.label("top");
        a.get_static(g, 0).monitor_enter();
        a.label("empty");
        a.get_static(g, 2).get_static(g, 3).lt().if_nz("take");
        a.get_static(g, 4).if_nz("finish");
        a.get_static(g, 0).wait().pop();
        a.goto("empty");
        a.label("take");
        a.get_static(g, 1).get_static(g, 2).aload().store(0);
        a.get_static(g, 2).iconst(1).add().put_static(g, 2);
        a.get_static(g, 0).monitor_exit();
        // "process": hash the request id
        a.load(0)
            .iconst(2654435761)
            .mul()
            .iconst(1000003)
            .rem()
            .store(1);
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 5).load(1).add().put_static(g, 5);
        a.get_static(g, 0).monitor_exit();
        a.goto("top");
        a.label("finish");
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 3).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(requests).new_array_int().put_static(g, 1);
        a.iconst(0).put_static(g, 2);
        a.iconst(0).put_static(g, 3);
        a.iconst(0).put_static(g, 4);
        a.iconst(0).put_static(g, 5);
        a.iconst(0).put_static(g, 6);
        a.spawn(acceptor, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.spawn(worker, 0).store(2);
        a.load(0).join();
        a.load(1).join();
        a.load(2).join();
        a.get_static(g, 5).print();
        a.get_static(g, 6).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Register the natives `server_loop` needs: a non-deterministic request
/// source with occasional callbacks.
pub fn server_natives(vm: &mut Vm) {
    let recv = vm
        .program
        .native_id_by_name("net_recv")
        .expect("server program");
    let on_event = vm
        .program
        .method_id_by_name("onEvent")
        .expect("server program");
    let mut state = 0x243F6A8885A308D3u64;
    vm.natives.register(
        recv,
        Box::new(move |ctx| {
            // xorshift + time-salted request id
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state = state.wrapping_add(ctx.now_millis as u64);
            let id = (state >> 17) as i64 & 0xFFFF;
            let mut out = NativeOutcome::value(id);
            if id % 11 == 0 {
                out.callbacks.push(djvm::CallbackReq {
                    method: on_event,
                    args: vec![id % 97],
                });
            }
            out
        }),
    );
}

/// Threads sum disjoint slices of a shared array — data-race free, so the
/// printed result is schedule-independent even though interleavings vary.
pub fn matrix_sum(len: i64, nthreads: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("data", Ty::Ref)
        .static_field("lock", Ty::Ref)
        .static_field("total", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let chunk = len / nthreads;
    // worker(id): sum data[id*chunk .. (id+1)*chunk]
    let worker = pb.method_typed("worker", vec![Ty::Int], 4, None).code(|a| {
        a.load(0).iconst(chunk).mul().store(1); // i
        a.load(1).iconst(chunk).add().store(2); // end
        a.iconst(0).store(3); // acc
        a.label("top");
        a.load(1).load(2).ge().if_nz("done");
        a.load(3).get_static(g, 0).load(1).aload().add().store(3);
        a.load(1).iconst(1).add().store(1);
        a.goto("top");
        a.label("done");
        a.get_static(g, 1).monitor_enter();
        a.get_static(g, 2).load(3).add().put_static(g, 2);
        a.get_static(g, 1).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 3).code(|a| {
        a.new(lock_cls).put_static(g, 1);
        a.iconst(len).new_array_int().put_static(g, 0);
        a.iconst(0).store(0);
        a.label("fill");
        a.load(0).iconst(len).ge().if_nz("filled");
        a.get_static(g, 0)
            .load(0)
            .load(0)
            .iconst(3)
            .mul()
            .iconst(1)
            .add()
            .astore();
        a.load(0).iconst(1).add().store(0);
        a.goto("fill");
        a.label("filled");
        a.iconst(nthreads).new_array_ref().store(1);
        a.iconst(0).store(0);
        a.label("spawn");
        a.load(0).iconst(nthreads).ge().if_nz("spawned");
        a.load(1).load(0).load(0).spawn(worker, 1).astore_ref();
        a.load(0).iconst(1).add().store(0);
        a.goto("spawn");
        a.label("spawned");
        a.iconst(0).store(0);
        a.label("join");
        a.load(0).iconst(nthreads).ge().if_nz("joined");
        a.load(1).load(0).aload_ref().join();
        a.load(0).iconst(1).add().store(0);
        a.goto("join");
        a.label("joined");
        a.get_static(g, 2).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Deep recursion with varying depth: exercises activation-stack growth.
pub fn deep_recursion(max_depth: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("acc", Ty::Int).build();
    // down (method id 0) recurses into itself
    let down = pb.func("down", 1, 2).code(|a| {
        a.load(0).if_z("base");
        a.load(0).iconst(1).sub().call(0);
        a.iconst(1).add().ret_val();
        a.label("base");
        a.iconst(0).ret_val();
    });
    assert_eq!(down, 0);
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(1).store(0);
        a.label("top");
        a.load(0).iconst(max_depth).gt().if_nz("done");
        a.get_static(g, 0).load(0).call(down).add().put_static(g, 0);
        a.load(0).iconst(7).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Cyclic barrier: `nthreads` meet `rounds` times; each round the last
/// arriver releases the rest via notifyAll. Prints rounds * nthreads.
pub fn barrier(nthreads: i64, rounds: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("arrived", Ty::Int)
        .static_field("generation", Ty::Int)
        .static_field("meets", Ty::Int)
        .build();
    let lock_cls = pb.class("Lock").build();
    let worker = pb.method("worker", 0, 2).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(rounds).ge().if_nz("done");
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 2).store(1); // my generation
        a.get_static(g, 1).iconst(1).add().put_static(g, 1);
        a.get_static(g, 3).iconst(1).add().put_static(g, 3);
        a.get_static(g, 1).iconst(nthreads).ge().if_z("waitloop");
        // last arriver: reset and advance generation
        a.iconst(0).put_static(g, 1);
        a.get_static(g, 2).iconst(1).add().put_static(g, 2);
        a.get_static(g, 0).notify_all();
        a.goto("release");
        a.label("waitloop");
        a.get_static(g, 2).load(1).ne().if_nz("release");
        a.get_static(g, 0).wait().pop();
        a.goto("waitloop");
        a.label("release");
        a.get_static(g, 0).monitor_exit();
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.new(lock_cls).put_static(g, 0);
        a.iconst(nthreads).new_array_ref().store(0);
        a.iconst(0).store(1);
        a.label("spawn");
        a.load(1).iconst(nthreads).ge().if_nz("spawned");
        a.load(0).load(1).spawn(worker, 0).astore_ref();
        a.load(1).iconst(1).add().store(1);
        a.goto("spawn");
        a.label("spawned");
        a.iconst(0).store(1);
        a.label("join");
        a.load(1).iconst(nthreads).ge().if_nz("joined");
        a.load(0).load(1).aload_ref().join();
        a.load(1).iconst(1).add().store(1);
        a.goto("join");
        a.label("joined");
        a.get_static(g, 3).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suite_programs_verify() {
        let progs = [
            racy_counter(10),
            bank_transfer(3, 5, 20),
            dining_philosophers(5),
            producer_consumer(10, 3),
            readers_writers(10),
            sleepy_workers(),
            gc_churn(10),
            server_loop(10),
            matrix_sum(64, 4),
            deep_recursion(30),
            barrier(3, 5),
        ];
        for p in &progs {
            assert!(p.methods.iter().all(|m| m.compiled.is_some()));
        }
    }
}
