//! # workloads — guest programs for the DejaVu reproduction
//!
//! Multithreaded programs written in the `djvm` guest ISA via the builder
//! DSL: the paper's **Figure 1** examples ([`fig1`]) and a server-style
//! suite ([`suite`]) exercising every non-determinism source and
//! perturbation channel the experiments need.
//!
//! [`registry`] enumerates the suite uniformly so sweeps (replay-accuracy
//! matrices, trace-size tables, overhead benches) can iterate "for every
//! workload".

pub mod fig1;
pub mod stress;
pub mod suite;

use djvm::{Program, Vm};

/// A uniformly runnable workload.
#[derive(Clone, Copy)]
pub struct Workload {
    pub name: &'static str,
    pub description: &'static str,
    /// Build the guest program (fresh each call; programs are immutable
    /// but cheap to rebuild).
    pub build: fn() -> Program,
    /// Register any natives the program declares.
    pub natives: fn(&mut Vm),
    /// Uses timed events (sleep/timed-wait)?
    pub timed: bool,
    /// Uses native calls?
    pub native: bool,
}

fn no_natives(_: &mut Vm) {}

/// The standard sweep set.
pub fn registry() -> Vec<Workload> {
    vec![
        Workload {
            name: "fig1_ab",
            description: "Figure 1 (A)/(B): switch-timing decides the printed value",
            build: fig1::fig1_ab,
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "fig1_hot",
            description: "Figure 1 (A)/(B) with 50k-iteration delay loops (interpreter hot path)",
            build: || fig1::fig1_ab_scaled(50_000),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "fig1_cd",
            description: "Figure 1 (C)/(D): Date() steers a branch deciding a wait/notify switch",
            build: fig1::fig1_cd,
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "racy_counter",
            description: "two threads race unsynchronized increments (lost-update window)",
            build: || suite::racy_counter(400),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "bank_transfer",
            description: "tellers move money under ordered per-account monitors",
            build: || suite::bank_transfer(3, 6, 120),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "dining_philosophers",
            description: "five philosophers, ordered fork acquisition",
            build: || suite::dining_philosophers(40),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "producer_consumer",
            description: "bounded buffer with wait/notifyAll and producer sleeps",
            build: || suite::producer_consumer(60, 4),
            natives: no_natives,
            timed: true,
            native: false,
        },
        Workload {
            name: "readers_writers",
            description: "reader count + writer flag protocol over one monitor",
            build: || suite::readers_writers(60),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "sleepy_workers",
            description: "sleeps, timed waits and interrupts (every timed path of §2.2)",
            build: suite::sleepy_workers,
            natives: no_natives,
            timed: true,
            native: false,
        },
        Workload {
            name: "gc_churn",
            description: "linked-list churn + garbage + identity-hash observation",
            build: || suite::gc_churn(250),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "server_loop",
            description: "native request source, monitor-protected queue, worker pool",
            build: || suite::server_loop(80),
            natives: suite::server_natives,
            timed: false,
            native: true,
        },
        Workload {
            name: "matrix_sum",
            description: "data-race-free parallel sum (schedule-independent result)",
            build: || suite::matrix_sum(512, 4),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "deep_recursion",
            description: "varying-depth recursion exercising stack growth",
            build: || suite::deep_recursion(120),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "barrier",
            description: "cyclic barrier, generations via wait/notifyAll",
            build: || suite::barrier(4, 25),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "lock_convoy",
            description: "three threads convoy on one hot monitor (delay inside the lock)",
            build: || stress::lock_convoy(3, 120),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "gc_pressure",
            description: "ref-array allocation storm, rolling retention, identity hashes",
            build: || stress::gc_pressure(140),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "native_heavy",
            description: "tight native-call loop with frequent callbacks (native-dominated trace)",
            build: || stress::native_heavy(100),
            natives: stress::native_heavy_natives,
            timed: false,
            native: true,
        },
        Workload {
            name: "clock_spin",
            description: "two threads spin on Date() reads (clock-dominated trace)",
            build: || stress::clock_spin(200),
            natives: no_natives,
            timed: false,
            native: false,
        },
        Workload {
            name: "recursion_storm",
            description: "mutual even/odd recursion with allocation at depth",
            build: || stress::recursion_storm(130),
            natives: no_natives,
            timed: false,
            native: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique() {
        let mut names: Vec<_> = registry().iter().map(|w| w.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn registry_builds_all() {
        for w in registry() {
            let p = (w.build)();
            assert!(
                p.methods.iter().all(|m| m.compiled.is_some()),
                "{} failed to compile",
                w.name
            );
        }
    }
}
