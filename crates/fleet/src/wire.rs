//! Length-prefixed binary framing for the fleet RPC (DESIGN.md §9).
//!
//! A connection opens with a 5-byte hello — the magic `DJVF` plus a
//! version byte — sent by the client and echoed by the server, so a
//! version mismatch is detected before any frame is parsed. After the
//! hello, each direction carries *frames*: a little-endian `u32` payload
//! length followed by that many payload bytes. Payloads are the binary
//! request/response encodings of [`crate::rpc`], built on the same LEB128
//! varints as the trace codec (`codec::put_varint`).
//!
//! Every failure mode is a typed [`WireError`] — a truncated frame, a
//! bogus length, a dropped peer — never a panic. The framing layer is
//! fuzzed in `tests/fleet_rpc.rs` with the same seeded-mutation loop as
//! `djvb_fuzz.rs`.

use codec::{get_varint, put_varint};
use std::fmt;
use std::io::{Read, Write};

/// Wire magic: first four bytes of every fleet connection.
pub const MAGIC: [u8; 4] = *b"DJVF";
/// Framing/protocol version carried in the hello.
pub const VERSION: u8 = 1;
/// Upper bound on a single frame's payload (32 MiB) — a corrupt length
/// prefix must not become an allocation bomb.
pub const MAX_FRAME: usize = 32 << 20;

/// Everything that can go wrong on the wire, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Hello did not start with `DJVF`.
    BadMagic,
    /// Hello magic was right but the version byte is one we don't speak.
    BadVersion(u8),
    /// A frame (or the hello) ended before its declared length.
    Truncated,
    /// Declared frame length exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// A request/response payload carried an unknown discriminant.
    BadTag(u8),
    /// A payload decoded cleanly but had bytes left over.
    TrailingBytes,
    /// The peer closed the connection at a frame boundary.
    PeerClosed,
    /// Any other socket-level failure, stringified.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (expected DJVF)"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversize(n) => write!(f, "frame length {n} exceeds cap {MAX_FRAME}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::PeerClosed => write!(f, "peer closed the connection"),
            WireError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// Payload primitives (shared by rpc.rs encode/decode).
// ---------------------------------------------------------------------

pub(crate) fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

pub(crate) fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, WireError> {
    let n = get_varint(buf, pos).ok_or(WireError::Truncated)? as usize;
    if n > MAX_FRAME {
        return Err(WireError::Oversize(n));
    }
    let end = pos.checked_add(n).ok_or(WireError::Truncated)?;
    let slice = buf.get(*pos..end).ok_or(WireError::Truncated)?;
    *pos = end;
    Ok(slice.to_vec())
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

pub(crate) fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, WireError> {
    String::from_utf8(get_bytes(buf, pos)?).map_err(|_| WireError::TrailingBytes)
}

pub(crate) fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    get_varint(buf, pos).ok_or(WireError::Truncated)
}

pub(crate) fn put_bool(buf: &mut Vec<u8>, b: bool) {
    buf.push(b as u8);
}

pub(crate) fn get_bool(buf: &[u8], pos: &mut usize) -> Result<bool, WireError> {
    match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            Ok(false)
        }
        Some(1) => {
            *pos += 1;
            Ok(true)
        }
        Some(&b) => Err(WireError::BadTag(b)),
        None => Err(WireError::Truncated),
    }
}

// ---------------------------------------------------------------------
// Hello + frames.
// ---------------------------------------------------------------------

/// The 5-byte connection preamble.
pub fn hello_bytes() -> [u8; 5] {
    [MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION]
}

/// Validate a received hello.
pub fn check_hello(h: &[u8; 5]) -> Result<(), WireError> {
    if h[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if h[4] != VERSION {
        return Err(WireError::BadVersion(h[4]));
    }
    Ok(())
}

/// Write one frame: `u32` little-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversize(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame (blocking). A clean EOF *before* the length prefix is
/// [`WireError::PeerClosed`]; an EOF mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len[got..])?;
        if n == 0 {
            return Err(if got == 0 {
                WireError::PeerClosed
            } else {
                WireError::Truncated
            });
        }
        got += n;
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(WireError::Oversize(n));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(payload)
}
