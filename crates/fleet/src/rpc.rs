//! The fleet RPC surface: typed requests and responses with a hand-rolled
//! binary codec (tag byte + varint fields, strings and blobs length-
//! prefixed). Decoding is strict — a payload must parse exactly and
//! consume every byte, or it is a typed [`WireError`].

use crate::wire::{get_bool, get_bytes, get_str, get_u64, put_bool, put_bytes, put_str, WireError};
use codec::put_varint;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Create a session for `workload` (registry name) at `seed`.
    Open { workload: String, seed: u64 },
    /// Stream a chunk of an externally recorded trace (flat or DJVB
    /// block format) into a `Recording` session; `done` seals it.
    IngestBlocks {
        session: u64,
        chunk: Vec<u8>,
        done: bool,
    },
    /// Record the session's workload on the server, sealing the trace.
    Record { session: u64 },
    /// Replay the sealed trace to completion (session becomes resident).
    Replay { session: u64 },
    /// Seek the resident replay to a logical time.
    SeekLogical { session: u64, logical: u64 },
    /// Report desyncs between the trace and the resident replay.
    DivergenceCheck { session: u64 },
    /// Replay-time profile of the resident replay (top-N spans).
    Profile { session: u64, top: u64 },
    /// Discard the session.
    Close { session: u64 },
    /// Single-session debugger passthrough: a JSON-line [`Command`]
    /// from the legacy protocol, dispatched against the resident replay.
    ///
    /// [`Command`]: debugger::protocol::Command
    Debug { session: u64, command: String },
    /// Fleet-wide metrics snapshot (canonical JSON).
    Stats,
    /// Graceful shutdown, gated on the server's ctrl token.
    Shutdown { token: String },
    /// Open a session over a catalog entry of the server's trace store:
    /// the trace is served out of shared deduped blocks (no upload),
    /// already sealed with the store's checkpoint boundaries.
    OpenStored { entry: String },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Opened {
        session: u64,
    },
    Ingested {
        session: u64,
        bytes: u64,
    },
    Recorded {
        session: u64,
        fingerprint: u64,
        state_digest: u64,
        events: u64,
        trace_bytes: u64,
    },
    Replayed {
        session: u64,
        fingerprint: u64,
        state_digest: u64,
        clean: bool,
    },
    Sought {
        session: u64,
        target_logical: u64,
        final_step: u64,
        final_logical: u64,
        steps_replayed: u64,
    },
    Divergence {
        session: u64,
        clean: bool,
        json: String,
    },
    Profiled {
        session: u64,
        json: String,
    },
    Closed {
        session: u64,
    },
    Debug {
        json: String,
    },
    Stats {
        json: String,
    },
    ShuttingDown,
    /// `code` follows the CLI exit-code contract: 1 = usage/corrupt
    /// input/unknown session, 2 = divergence or policy violation.
    Error {
        code: u8,
        message: String,
    },
}

impl Request {
    /// Stable name used as the latency-histogram key (`rpc.<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::IngestBlocks { .. } => "ingest",
            Request::Record { .. } => "record",
            Request::Replay { .. } => "replay",
            Request::SeekLogical { .. } => "seek",
            Request::DivergenceCheck { .. } => "divergence",
            Request::Profile { .. } => "profile",
            Request::Close { .. } => "close",
            Request::Debug { .. } => "debug",
            Request::Stats => "stats",
            Request::Shutdown { .. } => "shutdown",
            Request::OpenStored { .. } => "open_stored",
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Open { workload, seed } => {
                b.push(1);
                put_str(&mut b, workload);
                put_varint(&mut b, *seed);
            }
            Request::IngestBlocks {
                session,
                chunk,
                done,
            } => {
                b.push(2);
                put_varint(&mut b, *session);
                put_bytes(&mut b, chunk);
                put_bool(&mut b, *done);
            }
            Request::Record { session } => {
                b.push(3);
                put_varint(&mut b, *session);
            }
            Request::Replay { session } => {
                b.push(4);
                put_varint(&mut b, *session);
            }
            Request::SeekLogical { session, logical } => {
                b.push(5);
                put_varint(&mut b, *session);
                put_varint(&mut b, *logical);
            }
            Request::DivergenceCheck { session } => {
                b.push(6);
                put_varint(&mut b, *session);
            }
            Request::Profile { session, top } => {
                b.push(7);
                put_varint(&mut b, *session);
                put_varint(&mut b, *top);
            }
            Request::Close { session } => {
                b.push(8);
                put_varint(&mut b, *session);
            }
            Request::Debug { session, command } => {
                b.push(9);
                put_varint(&mut b, *session);
                put_str(&mut b, command);
            }
            Request::Stats => b.push(10),
            Request::Shutdown { token } => {
                b.push(11);
                put_str(&mut b, token);
            }
            Request::OpenStored { entry } => {
                b.push(12);
                put_str(&mut b, entry);
            }
        }
        b
    }

    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        let mut pos = 1usize;
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        let req = match tag {
            1 => Request::Open {
                workload: get_str(buf, &mut pos)?,
                seed: get_u64(buf, &mut pos)?,
            },
            2 => Request::IngestBlocks {
                session: get_u64(buf, &mut pos)?,
                chunk: get_bytes(buf, &mut pos)?,
                done: get_bool(buf, &mut pos)?,
            },
            3 => Request::Record {
                session: get_u64(buf, &mut pos)?,
            },
            4 => Request::Replay {
                session: get_u64(buf, &mut pos)?,
            },
            5 => Request::SeekLogical {
                session: get_u64(buf, &mut pos)?,
                logical: get_u64(buf, &mut pos)?,
            },
            6 => Request::DivergenceCheck {
                session: get_u64(buf, &mut pos)?,
            },
            7 => Request::Profile {
                session: get_u64(buf, &mut pos)?,
                top: get_u64(buf, &mut pos)?,
            },
            8 => Request::Close {
                session: get_u64(buf, &mut pos)?,
            },
            9 => Request::Debug {
                session: get_u64(buf, &mut pos)?,
                command: get_str(buf, &mut pos)?,
            },
            10 => Request::Stats,
            11 => Request::Shutdown {
                token: get_str(buf, &mut pos)?,
            },
            12 => Request::OpenStored {
                entry: get_str(buf, &mut pos)?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Response::Opened { session } => {
                b.push(1);
                put_varint(&mut b, *session);
            }
            Response::Ingested { session, bytes } => {
                b.push(2);
                put_varint(&mut b, *session);
                put_varint(&mut b, *bytes);
            }
            Response::Recorded {
                session,
                fingerprint,
                state_digest,
                events,
                trace_bytes,
            } => {
                b.push(3);
                put_varint(&mut b, *session);
                put_varint(&mut b, *fingerprint);
                put_varint(&mut b, *state_digest);
                put_varint(&mut b, *events);
                put_varint(&mut b, *trace_bytes);
            }
            Response::Replayed {
                session,
                fingerprint,
                state_digest,
                clean,
            } => {
                b.push(4);
                put_varint(&mut b, *session);
                put_varint(&mut b, *fingerprint);
                put_varint(&mut b, *state_digest);
                put_bool(&mut b, *clean);
            }
            Response::Sought {
                session,
                target_logical,
                final_step,
                final_logical,
                steps_replayed,
            } => {
                b.push(5);
                put_varint(&mut b, *session);
                put_varint(&mut b, *target_logical);
                put_varint(&mut b, *final_step);
                put_varint(&mut b, *final_logical);
                put_varint(&mut b, *steps_replayed);
            }
            Response::Divergence {
                session,
                clean,
                json,
            } => {
                b.push(6);
                put_varint(&mut b, *session);
                put_bool(&mut b, *clean);
                put_str(&mut b, json);
            }
            Response::Profiled { session, json } => {
                b.push(7);
                put_varint(&mut b, *session);
                put_str(&mut b, json);
            }
            Response::Closed { session } => {
                b.push(8);
                put_varint(&mut b, *session);
            }
            Response::Debug { json } => {
                b.push(9);
                put_str(&mut b, json);
            }
            Response::Stats { json } => {
                b.push(10);
                put_str(&mut b, json);
            }
            Response::ShuttingDown => b.push(11),
            Response::Error { code, message } => {
                b.push(12);
                b.push(*code);
                put_str(&mut b, message);
            }
        }
        b
    }

    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        let mut pos = 1usize;
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        let resp = match tag {
            1 => Response::Opened {
                session: get_u64(buf, &mut pos)?,
            },
            2 => Response::Ingested {
                session: get_u64(buf, &mut pos)?,
                bytes: get_u64(buf, &mut pos)?,
            },
            3 => Response::Recorded {
                session: get_u64(buf, &mut pos)?,
                fingerprint: get_u64(buf, &mut pos)?,
                state_digest: get_u64(buf, &mut pos)?,
                events: get_u64(buf, &mut pos)?,
                trace_bytes: get_u64(buf, &mut pos)?,
            },
            4 => Response::Replayed {
                session: get_u64(buf, &mut pos)?,
                fingerprint: get_u64(buf, &mut pos)?,
                state_digest: get_u64(buf, &mut pos)?,
                clean: get_bool(buf, &mut pos)?,
            },
            5 => Response::Sought {
                session: get_u64(buf, &mut pos)?,
                target_logical: get_u64(buf, &mut pos)?,
                final_step: get_u64(buf, &mut pos)?,
                final_logical: get_u64(buf, &mut pos)?,
                steps_replayed: get_u64(buf, &mut pos)?,
            },
            6 => Response::Divergence {
                session: get_u64(buf, &mut pos)?,
                clean: get_bool(buf, &mut pos)?,
                json: get_str(buf, &mut pos)?,
            },
            7 => Response::Profiled {
                session: get_u64(buf, &mut pos)?,
                json: get_str(buf, &mut pos)?,
            },
            8 => Response::Closed {
                session: get_u64(buf, &mut pos)?,
            },
            9 => Response::Debug {
                json: get_str(buf, &mut pos)?,
            },
            10 => Response::Stats {
                json: get_str(buf, &mut pos)?,
            },
            11 => Response::ShuttingDown,
            12 => {
                let code = *buf.get(pos).ok_or(WireError::Truncated)?;
                pos += 1;
                Response::Error {
                    code,
                    message: get_str(buf, &mut pos)?,
                }
            }
            t => return Err(WireError::BadTag(t)),
        };
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(resp)
    }
}
