//! The fleet load driver: N concurrent sessions doing
//! record → replay → seek → divergence-check → close against a live
//! server, with per-request latency capture and fingerprint verification
//! against local single-session ground truth.
//!
//! Used by `benches/fleet.rs` (sessions/sec + p99 into `BENCH_FLEET.json`),
//! by `dejavu-cli fleet-bench`, and by the verify.sh `fleet` stage. The
//! drive is deliberately three *waves* of short-lived connections: fleet
//! sessions outlive connections, so wave B reconnects and finds every
//! session from wave A still resident.

use crate::client::FleetClient;
use crate::rpc::{Request, Response};
use crate::session::spec_for;
use crate::wire::WireError;
use dejavu::{record_run, SymmetryConfig};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use telemetry::Histogram;

/// Everything one [`drive`] run measured.
pub struct DriveReport {
    pub sessions: usize,
    pub requests: u64,
    pub elapsed: Duration,
    /// Per-request round-trip latency, nanoseconds.
    pub latency: Histogram,
    /// Every concurrently-hosted fingerprint matched its single-session
    /// ground truth (and every replay was clean).
    pub fingerprints_match: bool,
    pub mismatches: Vec<String>,
    /// `active` reported by the server with all sessions resident.
    pub resident_peak: u64,
}

struct Shared {
    latency: Histogram,
    mismatches: Vec<String>,
    requests: u64,
}

fn timed_call(
    client: &mut FleetClient,
    req: &Request,
    latency: &mut Histogram,
    requests: &mut u64,
) -> Result<Response, WireError> {
    let t0 = Instant::now();
    let resp = client.call(req)?;
    latency.observe(t0.elapsed().as_nanos() as u64);
    *requests += 1;
    Ok(resp)
}

/// Drive `sessions` concurrent sessions of `workload` against the fleet
/// server at `addr` using `threads` client threads.
pub fn drive(
    addr: &str,
    sessions: usize,
    workload_name: &str,
    threads: usize,
) -> Result<DriveReport, WireError> {
    let workload = workloads::registry()
        .into_iter()
        .find(|w| w.name == workload_name)
        .ok_or_else(|| WireError::Io(format!("no such workload {workload_name:?}")))?;
    let threads = threads.clamp(1, sessions.max(1));
    let shared = Mutex::new(Shared {
        latency: Histogram::new(),
        mismatches: Vec::new(),
        requests: 0,
    });
    let ids = Mutex::new(vec![0u64; sessions]);
    let seed_of = |i: usize| 1_000 + i as u64;
    let t0 = Instant::now();

    // Wave A: open + record every session (connections then dropped).
    wave(threads, sessions, |lo, hi| {
        let mut client = FleetClient::connect(addr)?;
        let mut latency = Histogram::new();
        let mut requests = 0u64;
        let mut local_mismatches = Vec::new();
        for i in lo..hi {
            let seed = seed_of(i);
            let id = match timed_call(
                &mut client,
                &Request::Open {
                    workload: workload_name.to_string(),
                    seed,
                },
                &mut latency,
                &mut requests,
            )? {
                Response::Opened { session } => session,
                other => return Err(WireError::Io(format!("open: {other:?}"))),
            };
            ids.lock().unwrap()[i] = id;
            let fleet_fp = match timed_call(
                &mut client,
                &Request::Record { session: id },
                &mut latency,
                &mut requests,
            )? {
                Response::Recorded { fingerprint, .. } => fingerprint,
                other => return Err(WireError::Io(format!("record: {other:?}"))),
            };
            // Single-session ground truth for the same workload/seed.
            let spec = spec_for(&workload, seed);
            let (local, _trace) = record_run(&spec, workload.natives, SymmetryConfig::full(), true);
            if local.fingerprint != fleet_fp {
                local_mismatches.push(format!(
                    "session {id} (seed {seed}): fleet record fp {fleet_fp:#x} != local {:#x}",
                    local.fingerprint
                ));
            }
        }
        let mut sh = shared.lock().unwrap();
        sh.latency.merge(&latency);
        sh.requests += requests;
        sh.mismatches.extend(local_mismatches);
        Ok(())
    })?;

    // All sessions must be resident at once: that is the concurrency
    // claim this bench exists to demonstrate.
    let resident_peak = {
        let mut client = FleetClient::connect(addr)?;
        let json = client.stats()?;
        let doc =
            codec::Json::parse(&json).map_err(|e| WireError::Io(format!("stats parse: {e}")))?;
        doc.field("sessions")
            .and_then(|s| s.field("active"))
            .and_then(|a| a.as_u64())
            .map_err(|e| WireError::Io(format!("stats: {e}")))?
    };

    // Wave B: fresh connections replay + seek + divergence-check the
    // sessions recorded in wave A.
    wave(threads, sessions, |lo, hi| {
        let mut client = FleetClient::connect(addr)?;
        let mut latency = Histogram::new();
        let mut requests = 0u64;
        let mut local_mismatches = Vec::new();
        for i in lo..hi {
            let id = ids.lock().unwrap()[i];
            let seed = seed_of(i);
            let (fleet_fp, clean) = match timed_call(
                &mut client,
                &Request::Replay { session: id },
                &mut latency,
                &mut requests,
            )? {
                Response::Replayed {
                    fingerprint, clean, ..
                } => (fingerprint, clean),
                other => return Err(WireError::Io(format!("replay: {other:?}"))),
            };
            let spec = spec_for(&workload, seed);
            let (local, _trace) = record_run(&spec, workload.natives, SymmetryConfig::full(), true);
            if local.fingerprint != fleet_fp || !clean {
                local_mismatches.push(format!(
                    "session {id} (seed {seed}): fleet replay fp {fleet_fp:#x} (clean={clean}) != local {:#x}",
                    local.fingerprint
                ));
            }
            match timed_call(
                &mut client,
                &Request::SeekLogical {
                    session: id,
                    logical: 500,
                },
                &mut latency,
                &mut requests,
            )? {
                Response::Sought { .. } => {}
                other => return Err(WireError::Io(format!("seek: {other:?}"))),
            }
            match timed_call(
                &mut client,
                &Request::DivergenceCheck { session: id },
                &mut latency,
                &mut requests,
            )? {
                Response::Divergence { clean: true, .. } => {}
                Response::Divergence { clean: false, .. } => {
                    local_mismatches.push(format!("session {id}: divergence after seek"));
                }
                other => return Err(WireError::Io(format!("divergence: {other:?}"))),
            }
        }
        let mut sh = shared.lock().unwrap();
        sh.latency.merge(&latency);
        sh.requests += requests;
        sh.mismatches.extend(local_mismatches);
        Ok(())
    })?;

    // Wave C: close everything.
    wave(threads, sessions, |lo, hi| {
        let mut client = FleetClient::connect(addr)?;
        let mut latency = Histogram::new();
        let mut requests = 0u64;
        for i in lo..hi {
            let id = ids.lock().unwrap()[i];
            match timed_call(
                &mut client,
                &Request::Close { session: id },
                &mut latency,
                &mut requests,
            )? {
                Response::Closed { .. } => {}
                other => return Err(WireError::Io(format!("close: {other:?}"))),
            }
        }
        let mut sh = shared.lock().unwrap();
        sh.latency.merge(&latency);
        sh.requests += requests;
        Ok(())
    })?;

    let elapsed = t0.elapsed();
    let sh = shared.into_inner().unwrap();
    Ok(DriveReport {
        sessions,
        requests: sh.requests,
        elapsed,
        latency: sh.latency,
        fingerprints_match: sh.mismatches.is_empty() && resident_peak >= sessions as u64,
        mismatches: sh.mismatches,
        resident_peak,
    })
}

/// Split `0..total` across `threads` scoped workers; first error wins.
fn wave(
    threads: usize,
    total: usize,
    body: impl Fn(usize, usize) -> Result<(), WireError> + Sync,
) -> Result<(), WireError> {
    let per = total.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * per;
            let hi = ((t + 1) * per).min(total);
            if lo >= hi {
                break;
            }
            let body = &body;
            handles.push(scope.spawn(move || body(lo, hi)));
        }
        for h in handles {
            h.join()
                .map_err(|_| WireError::Io("drive worker panicked".into()))??;
        }
        Ok(())
    })
}
