//! A typed fleet client: one TCP connection, blocking request/response.
//! Sessions outlive connections — a client may connect, open sessions,
//! disconnect, and drive the same sessions later from a new connection
//! (the 3-phase bench does exactly this).

use crate::rpc::{Request, Response};
use crate::wire::{self, WireError};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Upload chunk size for [`FleetClient::ingest_trace`]. Small enough to
/// exercise the chunking path, large enough to not matter.
pub const INGEST_CHUNK: usize = 64 * 1024;

pub struct FleetClient {
    stream: TcpStream,
}

impl FleetClient {
    /// Connect and perform the hello exchange.
    pub fn connect(addr: &str) -> Result<FleetClient, WireError> {
        let mut stream = TcpStream::connect(addr).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        stream
            .write_all(&wire::hello_bytes())
            .map_err(WireError::from)?;
        let mut echo = [0u8; 5];
        match stream.read_exact(&mut echo) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(WireError::PeerClosed)
            }
            Err(e) => return Err(e.into()),
        }
        wire::check_hello(&echo)?;
        Ok(FleetClient { stream })
    }

    /// One round trip.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        let frame = wire::read_frame(&mut self.stream)?;
        Response::decode(&frame)
    }

    pub fn open(&mut self, workload: &str, seed: u64) -> Result<u64, WireError> {
        match self.call(&Request::Open {
            workload: workload.to_string(),
            seed,
        })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected(other)),
        }
    }

    /// Stream an encoded trace (flat or block format) into a session,
    /// sealing it with the final chunk.
    pub fn ingest_trace(&mut self, session: u64, bytes: &[u8]) -> Result<u64, WireError> {
        let mut sent = 0u64;
        let chunks: Vec<&[u8]> = if bytes.is_empty() {
            vec![&[]]
        } else {
            bytes.chunks(INGEST_CHUNK).collect()
        };
        let last = chunks.len() - 1;
        for (i, chunk) in chunks.into_iter().enumerate() {
            match self.call(&Request::IngestBlocks {
                session,
                chunk: chunk.to_vec(),
                done: i == last,
            })? {
                Response::Ingested { bytes, .. } => sent = bytes,
                other => return Err(unexpected(other)),
            }
        }
        Ok(sent)
    }

    /// Open a session over a trace-store catalog entry: no upload, the
    /// server serves the run out of its shared deduped blocks.
    pub fn open_stored(&mut self, entry: &str) -> Result<u64, WireError> {
        match self.call(&Request::OpenStored {
            entry: entry.to_string(),
        })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected(other)),
        }
    }

    pub fn stats(&mut self) -> Result<String, WireError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// Request a graceful shutdown; `Ok(true)` iff the token was accepted.
    pub fn shutdown(&mut self, token: &str) -> Result<bool, WireError> {
        match self.call(&Request::Shutdown {
            token: token.to_string(),
        })? {
            Response::ShuttingDown => Ok(true),
            Response::Error { .. } => Ok(false),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> WireError {
    match resp {
        Response::Error { message, .. } => WireError::Io(format!("server error: {message}")),
        other => WireError::Io(format!("unexpected response {other:?}")),
    }
}
