//! The fleet TCP server: a blocking acceptor feeding a bounded queue of
//! connections to N worker threads, plus a housekeeper sweeping idle
//! sessions. Shutdown is graceful and gated on a ctrl token: a
//! `Shutdown{token}` RPC with the configured token flips the stop flag,
//! wakes the acceptor with a loopback connect, and every thread joins.
//!
//! Workers read with a short socket timeout so they can notice the stop
//! flag between frames; an in-flight frame is always finished and
//! answered before the connection is dropped. A peer that vanishes
//! mid-frame is a typed [`WireError`] logged and swallowed — never a
//! panic (satellite: "a dropped peer must never panic the server").

use crate::manager::SessionManager;
use crate::rpc::{Request, Response};
use crate::wire::{self, WireError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a fleet server.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection queue between acceptor and workers; a full
    /// queue sheds load by dropping the new connection.
    pub queue: usize,
    /// Ctrl token required by the `Shutdown` RPC.
    pub shutdown_token: String,
    /// Idle-session eviction TTL.
    pub idle_ttl: Duration,
    /// Root of a content-addressed trace store to attach (`None` = no
    /// store: ingests stay session-local and `OpenStored` is refused).
    pub store_root: Option<std::path::PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 8,
            queue: 128,
            shutdown_token: "dejavu".to_string(),
            idle_ttl: crate::manager::DEFAULT_IDLE_TTL,
            store_root: None,
        }
    }
}

/// Socket read timeout: the granularity at which idle workers notice the
/// stop flag.
const POLL: Duration = Duration::from_millis(200);
/// Housekeeper sweep cadence.
const SWEEP: Duration = Duration::from_millis(500);

/// A running fleet server. Threads live until [`FleetServer::join`].
pub struct FleetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    manager: Arc<SessionManager>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    housekeeper: Option<JoinHandle<()>>,
}

impl FleetServer {
    /// Bind-and-run: `addr` may use port 0 for an ephemeral port.
    pub fn start(addr: &str, config: FleetConfig) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind(addr)?;
        Self::serve(listener, config)
    }

    /// Run on an already-bound listener.
    pub fn serve(listener: TcpListener, config: FleetConfig) -> std::io::Result<FleetServer> {
        let addr = listener.local_addr()?;
        let mut manager = SessionManager::with_idle_ttl(config.idle_ttl);
        if let Some(root) = &config.store_root {
            let store = store::Store::open(root)
                .map_err(|e| std::io::Error::other(format!("open store {root:?}: {e}")))?;
            manager.set_store(Arc::new(store));
        }
        let manager = Arc::new(manager);
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(config.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::new();
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let manager = Arc::clone(&manager);
            let stop = Arc::clone(&stop);
            let token = config.shutdown_token.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &manager, &stop, &token, addr)
            }));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || acceptor_loop(listener, tx, &stop))
        };

        let housekeeper = {
            let stop = Arc::clone(&stop);
            let manager = Arc::clone(&manager);
            std::thread::spawn(move || {
                let mut slept = Duration::ZERO;
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(50));
                    slept += Duration::from_millis(50);
                    if slept >= SWEEP {
                        slept = Duration::ZERO;
                        manager.evict_idle();
                    }
                }
            })
        };

        Ok(FleetServer {
            addr,
            stop,
            manager,
            acceptor: Some(acceptor),
            workers,
            housekeeper: Some(housekeeper),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Flip the stop flag and wake every blocked thread (used by the
    /// in-process owner; remote peers use the `Shutdown` RPC).
    pub fn trigger_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // One loopback connect per potentially-blocked accept() call.
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until every thread exits. Call [`trigger_shutdown`] first
    /// (or let a `Shutdown` RPC do it) or this blocks forever.
    ///
    /// [`trigger_shutdown`]: FleetServer::trigger_shutdown
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(h) = self.housekeeper.take() {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(listener: TcpListener, tx: SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let conn = match listener.accept() {
            Ok((c, _)) => c,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break; // the wake-up connect (or a late client) — drop it
        }
        match tx.try_send(conn) {
            Ok(()) => {}
            // Queue full: shed the connection. The client sees a clean
            // close before the hello and can retry.
            Err(TrySendError::Full(c)) => drop(c),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // tx drops here; idle workers' recv() fails and they exit.
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    manager: &SessionManager,
    stop: &AtomicBool,
    token: &str,
    addr: SocketAddr,
) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let conn = {
            let guard = rx.lock().unwrap();
            guard.recv_timeout(Duration::from_millis(200))
        };
        match conn {
            Ok(conn) => {
                // Errors are per-connection: log and move on.
                if let Err(e) = serve_conn(conn, manager, stop, token, addr) {
                    match e {
                        WireError::PeerClosed => {}
                        other => eprintln!("fleet: connection error: {other}"),
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// What one blocking-with-timeout read attempt produced.
enum Gulp {
    Bytes(usize),
    Eof,
    TimedOut,
}

fn gulp(conn: &mut TcpStream, buf: &mut [u8]) -> Result<Gulp, WireError> {
    match conn.read(buf) {
        Ok(0) => Ok(Gulp::Eof),
        Ok(n) => Ok(Gulp::Bytes(n)),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Ok(Gulp::TimedOut)
        }
        Err(e) => Err(e.into()),
    }
}

/// Fill `buf` completely, retrying timeouts. Returns `Ok(false)` if the
/// stop flag was raised while *no* bytes of `buf` had arrived yet (clean
/// stopping point) — once a byte arrives the read runs to completion so
/// an in-flight frame is never torn.
fn read_full_stoppable(
    conn: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok: bool,
) -> Result<Option<bool>, WireError> {
    let mut got = 0;
    while got < buf.len() {
        if got == 0 && stop.load(Ordering::SeqCst) {
            return Ok(Some(false));
        }
        match gulp(conn, &mut buf[got..])? {
            Gulp::Bytes(n) => got += n,
            Gulp::TimedOut => continue,
            Gulp::Eof => {
                if got == 0 && eof_ok {
                    return Ok(None);
                }
                return Err(if got == 0 {
                    WireError::PeerClosed
                } else {
                    WireError::Truncated
                });
            }
        }
    }
    Ok(Some(true))
}

fn serve_conn(
    mut conn: TcpStream,
    manager: &SessionManager,
    stop: &AtomicBool,
    token: &str,
    addr: SocketAddr,
) -> Result<(), WireError> {
    conn.set_nodelay(true).map_err(WireError::from)?;
    conn.set_read_timeout(Some(POLL)).map_err(WireError::from)?;

    // Hello exchange: validate, echo.
    let mut hello = [0u8; 5];
    match read_full_stoppable(&mut conn, &mut hello, stop, false)? {
        Some(true) => {}
        _ => return Ok(()), // stop raised before the hello — just drop
    }
    wire::check_hello(&hello)?;
    conn.write_all(&hello).map_err(WireError::from)?;

    loop {
        // Frame header.
        let mut len = [0u8; 4];
        let n = match read_full_stoppable(&mut conn, &mut len, stop, true)? {
            None => return Ok(()),        // peer hung up at a boundary
            Some(false) => return Ok(()), // graceful stop between frames
            Some(true) => u32::from_le_bytes(len) as usize,
        };
        if n > wire::MAX_FRAME {
            // Unrecoverable: we cannot resync a stream after refusing to
            // read its payload. Answer with a typed error and drop.
            let resp = Response::Error {
                code: 1,
                message: WireError::Oversize(n).to_string(),
            };
            let _ = wire::write_frame(&mut conn, &resp.encode());
            return Ok(());
        }
        let mut payload = vec![0u8; n];
        match read_full_stoppable(&mut conn, &mut payload, stop, false)? {
            Some(true) => {}
            _ => return Ok(()),
        }

        let resp = match Request::decode(&payload) {
            Err(e) => Response::Error {
                code: 1,
                message: e.to_string(),
            },
            Ok(Request::Shutdown { token: t }) => {
                if t == token {
                    wire::write_frame(&mut conn, &Response::ShuttingDown.encode())?;
                    stop.store(true, Ordering::SeqCst);
                    // Wake the acceptor so it notices the flag.
                    let _ = TcpStream::connect(addr);
                    return Ok(());
                }
                Response::Error {
                    code: 1,
                    message: "shutdown denied: bad ctrl token".to_string(),
                }
            }
            Ok(req) => manager.dispatch(req),
        };
        wire::write_frame(&mut conn, &resp.encode())?;
    }
}
