//! One hosted replay session: the `Recording → Sealed → Replaying`
//! state machine (DESIGN.md §9).
//!
//! * **Recording** — the session is an upload buffer ([`TraceIngest`]):
//!   either the client streams a previously recorded trace up in chunks
//!   (`IngestBlocks`), or asks the server to record the workload itself
//!   (`Record`). Both transitions seal the trace.
//! * **Sealed** — the trace (plus any block-boundary index) is resident
//!   but no VM exists yet. Cheap to hold by the thousand.
//! * **Replaying** — a [`DebugSession`] (VM + `TimeTravel` checkpoints)
//!   is resident, iReplayer-style: re-entering an already-replayed
//!   session costs a seek, not a re-decode. Seek/divergence/profile/debug
//!   requests auto-promote a `Sealed` session here.
//!
//! Each session owns its VM outright — nothing is shared between
//! sessions but the shard map — so fingerprint determinism is exactly
//! the single-session story.

use debugger::DebugSession;
use dejavu::{record_run, ExecSpec, SymmetryConfig, Trace, TraceError, TraceIngest};
use std::time::Instant;
use workloads::Workload;

/// Checkpoint interval for hosted replays — matches the CLI `serve`
/// subcommand so a fleet-hosted session seeks like a local one.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 5_000;

/// Build the execution spec the fleet uses for a hosted workload. This
/// MUST mirror `dejavu_repro::corpus::corpus_spec` (timer base 211,
/// jitter 60): a fleet-hosted recording and a corpus recording of the
/// same workload/seed must have identical fingerprints, or the fleet
/// would disagree with the CLI and the corpus gate. Guarded by a parity
/// test in the root crate (`tests/fleet_rpc.rs`).
pub fn spec_for(w: &Workload, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 211;
    s.timer_jitter = 60;
    s
}

/// Typed session-layer failure; [`code`](FleetError::code) maps onto the
/// CLI's exit-code contract (1 = bad input, 2 = divergence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    NoSuchSession(u64),
    NoSuchWorkload(String),
    /// Operation is invalid in the session's current phase.
    BadState {
        want: &'static str,
        got: &'static str,
    },
    Trace(TraceError),
    Profile(String),
    BadDebugCommand(String),
    ShutdownDenied,
    /// A trace-store operation failed (corrupt store, missing entry,
    /// conflicting verified fingerprints).
    Store(store::StoreError),
    /// An `OpenStored` reached a server with no store configured.
    NoStore,
}

impl FleetError {
    pub fn code(&self) -> u8 {
        // Everything here is a client/input error (exit-contract 1)
        // except a store fingerprint conflict, which is divergence-class
        // (2) like an in-band DivergenceCheck/Replay failure.
        match self {
            FleetError::Store(e) => e.code(),
            _ => 1,
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoSuchSession(id) => write!(f, "no such session {id}"),
            FleetError::NoSuchWorkload(w) => write!(f, "no such workload {w:?}"),
            FleetError::BadState { want, got } => {
                write!(f, "session is {got}, operation needs {want}")
            }
            FleetError::Trace(e) => write!(f, "trace: {e}"),
            FleetError::Profile(e) => write!(f, "profile: {e}"),
            FleetError::BadDebugCommand(e) => write!(f, "bad debug command: {e}"),
            FleetError::ShutdownDenied => write!(f, "shutdown denied: bad ctrl token"),
            FleetError::Store(e) => write!(f, "store: {e}"),
            FleetError::NoStore => write!(f, "server has no trace store configured"),
        }
    }
}

impl From<TraceError> for FleetError {
    fn from(e: TraceError) -> Self {
        FleetError::Trace(e)
    }
}

impl From<store::StoreError> for FleetError {
    fn from(e: store::StoreError) -> Self {
        FleetError::Store(e)
    }
}

/// Where a session is in its lifecycle.
pub enum Phase {
    Recording { ingest: TraceIngest },
    Sealed { trace: Trace, boundaries: Vec<u64> },
    Replaying { dbg: DebugSession },
}

impl Phase {
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Recording { .. } => "Recording",
            Phase::Sealed { .. } => "Sealed",
            Phase::Replaying { .. } => "Replaying",
        }
    }
}

/// Result of sealing a trace via server-side recording.
pub struct RecordOutcome {
    pub fingerprint: u64,
    pub state_digest: u64,
    pub events: u64,
    pub trace_bytes: u64,
}

/// Result of replaying to completion.
pub struct ReplayOutcome {
    pub fingerprint: u64,
    pub state_digest: u64,
    pub clean: bool,
}

/// One hosted session. All methods take `&mut self`; the manager wraps
/// each session in its own `Mutex` so concurrent requests serialize per
/// session while distinct sessions run fully in parallel.
pub struct Session {
    pub id: u64,
    pub workload: Workload,
    pub seed: u64,
    pub phase: Phase,
    /// Refreshed on every touch; drives idle eviction.
    pub last_touched: Instant,
}

impl Session {
    pub fn new(id: u64, workload: Workload, seed: u64) -> Self {
        Session {
            id,
            workload,
            seed,
            phase: Phase::Recording {
                ingest: TraceIngest::new(),
            },
            last_touched: Instant::now(),
        }
    }

    fn spec(&self) -> ExecSpec {
        spec_for(&self.workload, self.seed)
    }

    /// Append an upload chunk; `done` seals the session. When
    /// `keep_bytes` is set, a successful seal also hands back the
    /// complete uploaded file bytes — the manager forwards them to the
    /// trace store, which needs the *original* bytes (its byte-fidelity
    /// contract is against what was uploaded, not a re-encoding).
    pub fn ingest(
        &mut self,
        chunk: &[u8],
        done: bool,
        keep_bytes: bool,
    ) -> Result<(u64, Option<Vec<u8>>), FleetError> {
        let Phase::Recording { ingest } = &mut self.phase else {
            return Err(FleetError::BadState {
                want: "Recording",
                got: self.phase.name(),
            });
        };
        let total = ingest.push(chunk)?;
        if done {
            let taken = std::mem::replace(
                &mut self.phase,
                Phase::Sealed {
                    trace: Trace::default(),
                    boundaries: Vec::new(),
                },
            );
            let Phase::Recording { ingest } = taken else {
                unreachable!()
            };
            let sealed_bytes = keep_bytes.then(|| ingest.peek().to_vec());
            let ingested = match ingest.finish() {
                Ok(i) => i,
                Err(e) => {
                    // A corrupt upload empties the buffer but keeps the
                    // session usable: back to Recording for a retry.
                    self.phase = Phase::Recording {
                        ingest: TraceIngest::new(),
                    };
                    return Err(e.into());
                }
            };
            self.phase = Phase::Sealed {
                trace: ingested.trace,
                boundaries: ingested.boundaries,
            };
            return Ok((total, sealed_bytes));
        }
        Ok((total, None))
    }

    /// Record the workload server-side, sealing the trace.
    pub fn record(&mut self) -> Result<RecordOutcome, FleetError> {
        if !matches!(&self.phase, Phase::Recording { .. }) {
            return Err(FleetError::BadState {
                want: "Recording",
                got: self.phase.name(),
            });
        }
        let spec = self.spec();
        let (report, trace) =
            record_run(&spec, self.workload.natives, SymmetryConfig::full(), true);
        let stats = trace.stats();
        let outcome = RecordOutcome {
            fingerprint: report.fingerprint,
            state_digest: report.state_digest,
            events: (stats.switch_count + stats.clock_count + stats.native_count) as u64,
            trace_bytes: stats.total_bytes as u64,
        };
        self.phase = Phase::Sealed {
            trace,
            boundaries: Vec::new(),
        };
        Ok(outcome)
    }

    /// Ensure a resident [`DebugSession`] exists (promote `Sealed`).
    pub fn make_resident(&mut self) -> Result<&mut DebugSession, FleetError> {
        if let Phase::Recording { .. } = self.phase {
            return Err(FleetError::BadState {
                want: "Sealed or Replaying",
                got: "Recording",
            });
        }
        if let Phase::Sealed { .. } = self.phase {
            let taken = std::mem::replace(
                &mut self.phase,
                Phase::Sealed {
                    trace: Trace::default(),
                    boundaries: Vec::new(),
                },
            );
            let Phase::Sealed { trace, boundaries } = taken else {
                unreachable!()
            };
            let spec = self.spec();
            let dbg = DebugSession::new_indexed(
                spec.program.clone(),
                spec.vm.clone(),
                trace,
                DEFAULT_CHECKPOINT_INTERVAL,
                boundaries,
            );
            self.phase = Phase::Replaying { dbg };
        }
        match &mut self.phase {
            Phase::Replaying { dbg } => Ok(dbg),
            _ => unreachable!(),
        }
    }

    /// Replay the sealed trace to completion; idempotent on a resident
    /// session (it seeks back to step 0 and re-runs — deterministically).
    pub fn replay(&mut self) -> Result<ReplayOutcome, FleetError> {
        let already_resident = matches!(self.phase, Phase::Replaying { .. });
        let dbg = self.make_resident()?;
        if already_resident {
            dbg.seek(0);
        }
        dbg.cont();
        Ok(ReplayOutcome {
            fingerprint: dbg.vm().fingerprint.digest(),
            state_digest: dbg.vm().state_digest(),
            clean: dbg.desyncs().is_empty(),
        })
    }

    /// Expose the resident debugger for seek/profile/debug dispatch.
    pub fn debugger(&mut self) -> Result<&mut DebugSession, FleetError> {
        self.make_resident()
    }

    /// Tear the session apart into its resident debugger, if any (used by
    /// the compatibility adapter to hand the session back to the caller).
    pub fn into_debugger(self) -> Option<DebugSession> {
        match self.phase {
            Phase::Replaying { dbg } => Some(dbg),
            _ => None,
        }
    }

    /// Install an already-sealed trace (the `OpenStored` path: the store
    /// hands over a decoded trace plus its block-boundary checkpoint
    /// keys, no upload or server-side record needed).
    pub fn from_sealed(
        id: u64,
        workload: Workload,
        seed: u64,
        trace: Trace,
        boundaries: Vec<u64>,
    ) -> Self {
        Session {
            id,
            workload,
            seed,
            phase: Phase::Sealed { trace, boundaries },
            last_touched: Instant::now(),
        }
    }

    /// Install an already-built debugger session (compat adapter path).
    pub fn from_debugger(id: u64, workload: Workload, seed: u64, dbg: DebugSession) -> Self {
        Session {
            id,
            workload,
            seed,
            phase: Phase::Replaying { dbg },
            last_touched: Instant::now(),
        }
    }

    pub fn touch(&mut self) {
        self.last_touched = Instant::now();
    }
}
