//! The session manager: a sharded `Mutex<HashMap>` of live sessions plus
//! the fleet-wide telemetry registry.
//!
//! Lock discipline: a shard lock is held only long enough to fetch (or
//! insert/remove) the `Arc<Mutex<Session>>`; the actual work — recording,
//! replaying, seeking — happens under the *session* lock, so a slow
//! replay on one session never blocks requests for any other, and two
//! requests for the same session serialize (the state machine stays
//! coherent without a global lock).

use crate::rpc::{Request, Response};
use crate::session::{FleetError, Session};
use codec::{Json, ToJson};
use debugger::protocol::Command;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use telemetry::Registry;

/// Shard count for the session map. Power of two; sized so ≥64 live
/// sessions rarely contend on the same shard lock.
pub const SHARDS: usize = 16;

/// A session untouched this long is evicted by the housekeeper.
pub const DEFAULT_IDLE_TTL: Duration = Duration::from_secs(300);

pub struct SessionManager {
    shards: Vec<Mutex<HashMap<u64, Arc<Mutex<Session>>>>>,
    next_id: AtomicU64,
    opened: AtomicU64,
    closed: AtomicU64,
    evicted: AtomicU64,
    peak: AtomicU64,
    /// Request-latency histograms (`rpc.<name>`, nanoseconds) live in one
    /// registry behind a mutex: observations are O(1) bucket increments,
    /// so the critical section is tiny compared to any request body.
    metrics: Mutex<Registry>,
    idle_ttl: Duration,
    /// Optional content-addressed trace store: sealed uploads and
    /// server-side records dedup into it, and `OpenStored` serves
    /// sessions straight out of its shared blocks.
    store: Option<Arc<store::Store>>,
}

impl SessionManager {
    pub fn new() -> Self {
        Self::with_idle_ttl(DEFAULT_IDLE_TTL)
    }

    pub fn with_idle_ttl(idle_ttl: Duration) -> Self {
        SessionManager {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            metrics: Mutex::new(Registry::new()),
            idle_ttl,
            store: None,
        }
    }

    /// Attach a trace store (before the manager is shared).
    pub fn set_store(&mut self, store: Arc<store::Store>) {
        self.store = Some(store);
    }

    pub fn store(&self) -> Option<&Arc<store::Store>> {
        self.store.as_ref()
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<Mutex<Session>>>> {
        &self.shards[(id as usize) % SHARDS]
    }

    fn note_opened(&self) {
        self.opened.fetch_add(1, Ordering::Relaxed);
        let active = self.active();
        self.peak.fetch_max(active, Ordering::Relaxed);
    }

    /// Live session count (sums shard sizes; exact, not sampled).
    pub fn active(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().map(|m| m.len()).unwrap_or(0) as u64)
            .sum()
    }

    /// Create a session for a registry workload.
    pub fn open(&self, workload: &str, seed: u64) -> Result<u64, FleetError> {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == workload)
            .ok_or_else(|| FleetError::NoSuchWorkload(workload.to_string()))?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(Session::new(id, w, seed)));
        self.shard(id).lock().unwrap().insert(id, session);
        self.note_opened();
        Ok(id)
    }

    /// Install an already-built session (compat adapter path).
    pub fn install(&self, build: impl FnOnce(u64) -> Session) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(build(id)));
        self.shard(id).lock().unwrap().insert(id, session);
        self.note_opened();
        id
    }

    /// Fetch a session handle (shard lock held only for the lookup).
    pub fn get(&self, id: u64) -> Result<Arc<Mutex<Session>>, FleetError> {
        self.shard(id)
            .lock()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or(FleetError::NoSuchSession(id))
    }

    /// Remove a session, returning it to the caller.
    pub fn take(&self, id: u64) -> Result<Arc<Mutex<Session>>, FleetError> {
        let s = self
            .shard(id)
            .lock()
            .unwrap()
            .remove(&id)
            .ok_or(FleetError::NoSuchSession(id))?;
        self.closed.fetch_add(1, Ordering::Relaxed);
        Ok(s)
    }

    /// Drop sessions idle past the TTL. `try_lock` on the session keeps
    /// the sweep from stalling behind an in-flight request — a busy
    /// session is by definition not idle.
    pub fn evict_idle(&self) -> usize {
        let now = Instant::now();
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.lock().unwrap();
            let stale: Vec<u64> = map
                .iter()
                .filter_map(|(&id, s)| match s.try_lock() {
                    Ok(sess) if now.duration_since(sess.last_touched) > self.idle_ttl => Some(id),
                    _ => None,
                })
                .collect();
            for id in stale {
                map.remove(&id);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        evicted
    }

    /// Canonical (sorted-key, byte-deterministic) fleet metrics snapshot.
    /// When a trace store is attached, its observer counters (blocks
    /// stored/deduped/compacted, checkpoint hits/misses) ride along
    /// under `"store"`.
    pub fn stats_json(&self) -> String {
        let mut fields = vec![
            (
                "sessions",
                Json::obj(vec![
                    ("opened", Json::UInt(self.opened.load(Ordering::Relaxed))),
                    ("closed", Json::UInt(self.closed.load(Ordering::Relaxed))),
                    ("evicted", Json::UInt(self.evicted.load(Ordering::Relaxed))),
                    ("active", Json::UInt(self.active())),
                    ("peak", Json::UInt(self.peak.load(Ordering::Relaxed))),
                ]),
            ),
            ("rpc", self.metrics.lock().unwrap().to_json()),
        ];
        if let Some(store) = &self.store {
            fields.push(("store", store.counters_json()));
        }
        let mut doc = Json::obj(fields);
        doc.canonicalize();
        doc.to_string()
    }

    /// Record one request's latency under `rpc.<name>`.
    pub fn observe_latency(&self, rpc: &'static str, nanos: u64) {
        self.metrics.lock().unwrap().observe(rpc, nanos);
    }

    fn latency_key(req: &Request) -> &'static str {
        match req.name() {
            "open" => "rpc.open",
            "ingest" => "rpc.ingest",
            "record" => "rpc.record",
            "replay" => "rpc.replay",
            "seek" => "rpc.seek",
            "divergence" => "rpc.divergence",
            "profile" => "rpc.profile",
            "close" => "rpc.close",
            "debug" => "rpc.debug",
            "stats" => "rpc.stats",
            "open_stored" => "rpc.open_stored",
            _ => "rpc.other",
        }
    }

    /// Execute one RPC. This is the single semantic core: the TCP server,
    /// the JSON-line compatibility adapter, and in-process tests all
    /// funnel through here, so the protocol cannot fork. `Shutdown` is
    /// *not* handled — it is a server-level concern (the manager has no
    /// stop flag) and dispatching it yields a typed error.
    pub fn dispatch(&self, req: Request) -> Response {
        let key = Self::latency_key(&req);
        let t0 = Instant::now();
        let resp = self.dispatch_inner(req);
        self.observe_latency(key, t0.elapsed().as_nanos() as u64);
        resp
    }

    fn dispatch_inner(&self, req: Request) -> Response {
        match self.try_dispatch(req) {
            Ok(resp) => resp,
            Err(e) => Response::Error {
                code: e.code(),
                message: e.to_string(),
            },
        }
    }

    fn try_dispatch(&self, req: Request) -> Result<Response, FleetError> {
        Ok(match req {
            Request::Open { workload, seed } => Response::Opened {
                session: self.open(&workload, seed)?,
            },
            Request::IngestBlocks {
                session,
                chunk,
                done,
            } => {
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let (bytes, sealed) = s.ingest(&chunk, done, self.store.is_some())?;
                // A sealed upload dedups into the store unverified
                // (fingerprint 0): ingest trusts nothing it has not
                // replayed. A later verified put upgrades in place.
                if let (Some(store), Some(data)) = (self.store.as_ref(), sealed) {
                    store.put_bytes(&s.workload.name, s.seed, &data, 0, "")?;
                }
                Response::Ingested { session, bytes }
            }
            Request::Record { session } => {
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let out = s.record()?;
                // The server ran the record itself, so the fingerprint is
                // first-hand: store the sealed trace as verified.
                if let Some(store) = self.store.as_ref() {
                    if let crate::session::Phase::Sealed { trace, .. } = &s.phase {
                        store.put_bytes(
                            &s.workload.name,
                            s.seed,
                            &trace.encoded(),
                            out.fingerprint,
                            "",
                        )?;
                    }
                }
                Response::Recorded {
                    session,
                    fingerprint: out.fingerprint,
                    state_digest: out.state_digest,
                    events: out.events,
                    trace_bytes: out.trace_bytes,
                }
            }
            Request::OpenStored { entry } => {
                let store = self.store.as_ref().ok_or(FleetError::NoStore)?;
                let stored = store.open_trace(&entry)?;
                let w = workloads::registry()
                    .into_iter()
                    .find(|w| w.name == stored.entry.workload)
                    .ok_or_else(|| {
                        FleetError::NoSuchWorkload(stored.entry.workload.clone())
                    })?;
                let seed = stored.entry.seed;
                let (trace, boundaries) = (stored.trace, stored.boundaries);
                let session =
                    self.install(|id| Session::from_sealed(id, w, seed, trace, boundaries));
                Response::Opened { session }
            }
            Request::Replay { session } => {
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let out = s.replay()?;
                Response::Replayed {
                    session,
                    fingerprint: out.fingerprint,
                    state_digest: out.state_digest,
                    clean: out.clean,
                }
            }
            Request::SeekLogical { session, logical } => {
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let st = s.debugger()?.seek_time(logical);
                Response::Sought {
                    session,
                    target_logical: st.target_logical,
                    final_step: st.final_step,
                    final_logical: st.final_logical,
                    steps_replayed: st.steps_replayed,
                }
            }
            Request::DivergenceCheck { session } => {
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let dbg = s.debugger()?;
                Response::Divergence {
                    session,
                    clean: dbg.desyncs().is_empty(),
                    json: dbg.divergence_json(),
                }
            }
            Request::Profile { session, top } => {
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let json = s
                    .debugger()?
                    .profile_json(top)
                    .map_err(FleetError::Profile)?;
                Response::Profiled { session, json }
            }
            Request::Close { session } => {
                self.take(session)?;
                Response::Closed { session }
            }
            Request::Debug { session, command } => {
                use codec::FromJson;
                let cmd = Command::from_json_str(&command)
                    .map_err(|e| FleetError::BadDebugCommand(e.to_string()))?;
                let s = self.get(session)?;
                let mut s = s.lock().unwrap();
                s.touch();
                let dbg = s.debugger()?;
                let resp = debugger::server::handle(dbg, cmd);
                Response::Debug {
                    json: resp.to_json_string(),
                }
            }
            Request::Stats => Response::Stats {
                json: self.stats_json(),
            },
            Request::Shutdown { .. } => return Err(FleetError::ShutdownDenied),
        })
    }
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}
