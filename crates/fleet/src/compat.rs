//! Backwards compatibility: the legacy single-session JSON-line debugger
//! protocol, served as a thin adapter over the fleet RPC.
//!
//! The original `debugger::server::serve_one` accepted exactly one
//! connection; a second client hung until the first disconnected. Here N
//! worker threads `accept()` on a shared listener and every connection's
//! commands are dispatched as `Request::Debug` through the same
//! [`SessionManager`] the fleet server uses — so two simultaneous clients
//! both make progress (serialized per command by the session lock), the
//! wire format is byte-identical to `serve_one`'s, and the single- and
//! multi-session servers cannot drift (they share
//! `debugger::server::handle` *and* `serve_lines`).

use crate::manager::SessionManager;
use crate::rpc::{Request, Response as RpcResponse};
use crate::session::Session;
use codec::{FromJson, ToJson};
use debugger::protocol::Response;
use debugger::DebugSession;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Serve the legacy JSON-line protocol to any number of simultaneous
/// clients, all sharing one debug session, until a client sends `quit`.
/// Returns the session (like `serve_one`) so callers can inspect it.
pub fn serve_debug(
    session: DebugSession,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<DebugSession> {
    let manager = Arc::new(SessionManager::new());
    let w = workloads::registry().remove(0); // label only; never re-built
    let id = manager.install(|id| Session::from_debugger(id, w, 0, session));
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    let workers = workers.max(1);

    let mut handles = Vec::new();
    for _ in 0..workers {
        let listener = listener.try_clone()?;
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let Ok((conn, _)) = listener.accept() else {
                    break;
                };
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let quit = debugger::server::serve_lines(conn, |cmd| {
                    let req = Request::Debug {
                        session: id,
                        command: cmd.to_json_string(),
                    };
                    match manager.dispatch(req) {
                        RpcResponse::Debug { json } => Response::from_json_str(&json)
                            .unwrap_or_else(|e| Response::Error {
                                message: format!("adapter decode: {e}"),
                            }),
                        RpcResponse::Error { message, .. } => Response::Error { message },
                        other => Response::Error {
                            message: format!("adapter: unexpected rpc response {other:?}"),
                        },
                    }
                })
                .unwrap_or(false);
                if quit {
                    stop.store(true, Ordering::SeqCst);
                    // Wake every worker still blocked in accept().
                    for _ in 0..workers {
                        let _ = TcpStream::connect(addr);
                    }
                    break;
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }

    let slot = manager
        .take(id)
        .expect("compat session vanished from the manager");
    let session = Arc::try_unwrap(slot)
        .ok()
        .expect("compat session still referenced after workers joined")
        .into_inner()
        .unwrap();
    Ok(session
        .into_debugger()
        .expect("compat session left the Replaying phase"))
}
