//! # fleet — a concurrent multi-session record/replay server
//!
//! The paper's platform is one VM, one trace, one process. This crate is
//! the refactor that turns it into a *service* (DESIGN.md §9): N replay
//! sessions hosted concurrently behind one long-lived TCP server, each
//! session owning its own VM and `TimeTravel` checkpoints so fingerprint
//! determinism is exactly the single-session story.
//!
//! Layering (nothing below knows about anything above):
//!
//! ```text
//!  clients: FleetClient (binary RPC) · DebugClient (legacy JSON lines)
//!      │                                  │
//!  [`server`] thread-pool acceptor    [`compat`] JSON-line adapter
//!      └──────────────┬─────────────────┘
//!               [`manager::SessionManager`] — sharded session map,
//!               dispatch, telemetry (the single semantic core)
//!                      │
//!               [`session::Session`] — Recording → Sealed → Replaying
//!                      │
//!               debugger::DebugSession → dejavu replay → djvm
//! ```
//!
//! The wire protocol ([`wire`], [`rpc`]) is a magic+version hello
//! followed by length-prefixed binary frames; every malformed input is a
//! typed [`WireError`], fuzzed the same way the DJVB decoder is.

pub mod bench;
pub mod client;
pub mod compat;
pub mod manager;
pub mod rpc;
pub mod server;
pub mod session;
pub mod wire;

pub use client::FleetClient;
pub use manager::{SessionManager, DEFAULT_IDLE_TTL, SHARDS};
pub use rpc::{Request, Response};
pub use server::{FleetConfig, FleetServer};
pub use session::{spec_for, FleetError, Phase, Session, DEFAULT_CHECKPOINT_INTERVAL};
pub use wire::{WireError, MAGIC, MAX_FRAME, VERSION};
