//! Integration tests for the fleet service: concurrent sessions over the
//! framed RPC, the legacy JSON-line adapter with simultaneous clients,
//! the streaming ingest path, and token-gated graceful shutdown.

use codec::ToJson;
use debugger::protocol::{Command, Response as DbgResponse};
use debugger::{DebugClient, DebugSession};
use dejavu::{encode_trace, record_run, SymmetryConfig, TraceFormat, DEFAULT_BLOCK_BUDGET};
use fleet::{spec_for, FleetClient, FleetConfig, FleetServer, Request, Response};
use std::time::Duration;

fn workload(name: &str) -> workloads::Workload {
    workloads::registry()
        .into_iter()
        .find(|w| w.name == name)
        .expect("workload in registry")
}

fn start_server(workers: usize) -> FleetServer {
    FleetServer::start(
        "127.0.0.1:0",
        FleetConfig {
            workers,
            shutdown_token: "test-token".to_string(),
            ..FleetConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

#[test]
fn concurrent_sessions_record_replay_seek_with_identical_fingerprints() {
    let server = start_server(4);
    let addr = server.addr().to_string();

    // 16 sessions driven by 4 client threads keeps the tier-1 suite
    // quick; the 64-session version runs in benches/fleet.rs + verify.sh.
    let report = fleet::bench::drive(&addr, 16, "fig1_ab", 4).expect("drive");
    assert_eq!(report.sessions, 16);
    assert!(
        report.fingerprints_match,
        "fleet fingerprints diverged from single-session ground truth: {:?}",
        report.mismatches
    );
    assert_eq!(report.resident_peak, 16, "all sessions resident at once");
    assert!(report.latency.count() > 0);

    // Stats survive the drive: peak must have seen all 16.
    let mut client = FleetClient::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    let doc = codec::Json::parse(&stats).expect("canonical stats json");
    let peak = doc.field("sessions").unwrap().field("peak").unwrap();
    assert!(peak.as_u64().unwrap() >= 16, "peak {peak} < 16");

    server.trigger_shutdown();
    server.join();
}

#[test]
fn streamed_ingest_replays_to_the_recorded_fingerprint() {
    let server = start_server(2);
    let addr = server.addr().to_string();

    // Record locally, encode as a block trace, upload in chunks.
    let w = workload("racy_counter");
    let spec = spec_for(&w, 7);
    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let bytes = encode_trace(&trace, TraceFormat::Block, DEFAULT_BLOCK_BUDGET);

    let mut client = FleetClient::connect(&addr).expect("connect");
    let id = client.open("racy_counter", 7).expect("open");
    // Tiny chunk size exercises the reassembly path hard.
    for (i, chunk) in bytes.chunks(97).enumerate() {
        let done = (i + 1) * 97 >= bytes.len();
        match client
            .call(&Request::IngestBlocks {
                session: id,
                chunk: chunk.to_vec(),
                done,
            })
            .expect("ingest")
        {
            Response::Ingested { .. } => {}
            other => panic!("ingest: {other:?}"),
        }
    }
    match client
        .call(&Request::Replay { session: id })
        .expect("replay")
    {
        Response::Replayed {
            fingerprint,
            state_digest,
            clean,
            ..
        } => {
            assert!(clean, "desyncs replaying an uploaded trace");
            assert_eq!(fingerprint, rec.fingerprint, "fingerprint drift");
            assert_eq!(state_digest, rec.state_digest, "state digest drift");
        }
        other => panic!("replay: {other:?}"),
    }

    // Ingest into a sealed session is a typed state error, not a panic.
    match client
        .call(&Request::IngestBlocks {
            session: id,
            chunk: vec![1, 2, 3],
            done: true,
        })
        .expect("call")
    {
        Response::Error { code: 1, message } => {
            assert!(message.contains("Replaying"), "got: {message}")
        }
        other => panic!("expected state error, got {other:?}"),
    }

    server.trigger_shutdown();
    server.join();
}

#[test]
fn store_backed_fleet_dedups_ingests_and_serves_open_stored() {
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fleet-store");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let server = FleetServer::start(
        "127.0.0.1:0",
        FleetConfig {
            workers: 4,
            shutdown_token: "test-token".to_string(),
            store_root: Some(root.clone()),
            ..FleetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Record locally (fig1_hot: the block-rich family member), then
    // upload every run TWICE from concurrent clients — the store must
    // dedup the repeats while sessions ingest in parallel.
    let w = workload("fig1_hot");
    let runs: Vec<(u64, u64, Vec<u8>)> = (21u64..25)
        .map(|seed| {
            let spec = spec_for(&w, seed);
            let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
            let bytes = encode_trace(&trace, TraceFormat::Block, DEFAULT_BLOCK_BUDGET);
            (seed, rec.fingerprint, bytes)
        })
        .collect();
    let handles: Vec<_> = runs
        .iter()
        .cloned()
        .map(|(seed, _, bytes)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = FleetClient::connect(&addr).expect("connect");
                for _ in 0..2 {
                    let id = client.open("fig1_hot", seed).expect("open");
                    client.ingest_trace(id, &bytes).expect("ingest");
                    client.call(&Request::Close { session: id }).expect("close");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("uploader");
    }

    // Server-side Record also lands in the store — verified first-hand.
    let mut client = FleetClient::connect(&addr).expect("connect");
    let rec_session = client.open("fig1_cd", 3).expect("open");
    let recorded_fp = match client
        .call(&Request::Record {
            session: rec_session,
        })
        .expect("record")
    {
        Response::Recorded { fingerprint, .. } => fingerprint,
        other => panic!("record: {other:?}"),
    };

    // The store converged 8 uploads of 4 runs into 4 entries (puts=2
    // each, fingerprint 0: ingest is unverified) plus the record.
    let store = server.manager().store().expect("store attached").clone();
    let entries = store.entries().expect("catalog");
    assert_eq!(entries.len(), 5);
    for e in &entries {
        if e.workload == "fig1_hot" {
            assert_eq!(e.puts, 2, "both uploads converged");
            assert_eq!(e.fingerprint, 0, "ingest stores unverified");
        } else {
            assert_eq!(e.workload, "fig1_cd");
            assert_eq!(e.fingerprint, recorded_fp, "record stores verified");
        }
    }

    // OpenStored serves each run out of shared blocks; replay must hit
    // the locally recorded fingerprint exactly.
    for (seed, fp, _) in &runs {
        let e = entries
            .iter()
            .find(|e| e.workload == "fig1_hot" && e.seed == *seed)
            .expect("entry for seed");
        let sid = client.open_stored(&e.identity()).expect("open_stored");
        match client.call(&Request::Replay { session: sid }).expect("replay") {
            Response::Replayed {
                fingerprint, clean, ..
            } => {
                assert!(clean, "seed {seed}: desyncs replaying from store");
                assert_eq!(fingerprint, *fp, "seed {seed}: fingerprint drift");
            }
            other => panic!("replay: {other:?}"),
        }
    }

    // The stats surface carries the store counters.
    let stats = client.stats().expect("stats");
    let doc = codec::Json::parse(&stats).expect("canonical stats json");
    let counters = doc.field("store").unwrap().field("counters").unwrap();
    let counter = |k: &str| counters.field(k).unwrap().as_u64().unwrap();
    assert!(counter("store.blocks_deduped") > 0, "repeat uploads dedup");
    assert!(counter("store.blocks_stored") > 0);
    assert!(counter("store.checkpoint_misses") > 0, "open_stored decoded blocks");

    // An unknown entry is a typed error, not a panic.
    match client
        .call(&Request::OpenStored {
            entry: "f".repeat(32),
        })
        .expect("call")
    {
        Response::Error { code: 1, .. } => {}
        other => panic!("expected error, got {other:?}"),
    }

    server.trigger_shutdown();
    server.join();
}

#[test]
fn unknown_session_and_bad_workload_are_typed_errors() {
    let server = start_server(2);
    let addr = server.addr().to_string();
    let mut client = FleetClient::connect(&addr).expect("connect");

    match client
        .call(&Request::Replay { session: 999 })
        .expect("call")
    {
        Response::Error { code: 1, message } => assert!(message.contains("999")),
        other => panic!("expected error, got {other:?}"),
    }
    match client
        .call(&Request::Open {
            workload: "no_such_workload".to_string(),
            seed: 1,
        })
        .expect("call")
    {
        Response::Error { code: 1, .. } => {}
        other => panic!("expected error, got {other:?}"),
    }

    server.trigger_shutdown();
    server.join();
}

#[test]
fn shutdown_is_token_gated_and_clean() {
    let server = start_server(2);
    let addr = server.addr().to_string();

    let mut client = FleetClient::connect(&addr).expect("connect");
    assert!(
        !client.shutdown("wrong-token").expect("call"),
        "wrong token must be refused"
    );
    // The connection survives a refused shutdown.
    let id = client.open("fig1_ab", 1).expect("open after refusal");
    assert!(id > 0);

    assert!(client.shutdown("test-token").expect("call"), "right token");
    server.join(); // would hang forever if shutdown didn't propagate
}

#[test]
fn dropped_peer_mid_frame_does_not_kill_the_server() {
    use std::io::Write;
    let server = start_server(2);
    let addr = server.addr();

    // Half a hello, then hang up.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"DJ").unwrap();
    drop(s);
    // A full hello with a bogus frame length, then hang up.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"DJVF\x01").unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    drop(s);
    std::thread::sleep(Duration::from_millis(100));

    // Server still answers real clients.
    let mut client = FleetClient::connect(&addr.to_string()).expect("connect after abuse");
    assert!(client.open("fig1_ab", 1).is_ok());

    server.trigger_shutdown();
    server.join();
}

#[test]
fn two_simultaneous_jsonline_clients_make_progress() {
    // Satellite regression: the old serve_one accepted one connection; a
    // second client hung until the first quit. The compat adapter must
    // interleave both.
    let w = workload("fig1_ab");
    let spec = spec_for(&w, 3);
    let (_rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let session = DebugSession::new(spec.program.clone(), spec.vm.clone(), trace, 5_000);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let server = std::thread::spawn(move || fleet::compat::serve_debug(session, listener, 2));

    let mut a = DebugClient::connect(&addr).expect("client A");
    let mut b = DebugClient::connect(&addr).expect("client B");
    // Interleave requests while BOTH connections are open: with the old
    // accept-once loop, B's first request would block forever here.
    for _ in 0..3 {
        assert!(matches!(
            a.threads().expect("A threads"),
            DbgResponse::Threads { .. }
        ));
        assert!(matches!(
            b.metrics().expect("B metrics"),
            DbgResponse::Metrics { .. }
        ));
    }
    assert!(matches!(
        b.step().expect("B step"),
        DbgResponse::Stopped { .. }
    ));
    assert!(matches!(
        a.output().expect("A output"),
        DbgResponse::Output { .. }
    ));

    drop(b); // dropped peer must not take the server down
    assert!(matches!(a.quit().expect("A quit"), DbgResponse::Bye));
    let session = server.join().expect("no panic").expect("serve_debug ok");
    // The returned session reflects work done over the wire.
    assert!(session.step_index() >= 1);
}

#[test]
fn jsonline_adapter_speaks_the_exact_legacy_wire_format() {
    // Raw-socket check (no DebugClient): bytes on the wire are the same
    // JSON-line protocol serve_one spoke, including error replies.
    use std::io::{BufRead, BufReader, Write};
    let w = workload("fig1_ab");
    let spec = spec_for(&w, 3);
    let (_rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    let session = DebugSession::new(spec.program.clone(), spec.vm.clone(), trace, 5_000);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let server = std::thread::spawn(move || fleet::compat::serve_debug(session, listener, 1));

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let mut line = String::new();

    stream.write_all(b"this is not json\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"error\""),
        "bad command → error line: {line}"
    );

    line.clear();
    let mut cmd = Command::Threads.to_json_string();
    cmd.push('\n');
    stream.write_all(cmd.as_bytes()).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"threads\""), "got: {line}");

    line.clear();
    let mut cmd = Command::Quit.to_json_string();
    cmd.push('\n');
    stream.write_all(cmd.as_bytes()).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"bye\""), "got: {line}");

    server.join().expect("no panic").expect("serve_debug ok");
}
