#!/bin/sh
# Hermetic verification: build, test and bench-smoke the whole workspace
# with the network unplugged (--offline). Fails loudly if anything would
# need a registry fetch — the workspace must stay zero-dependency.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== bench smoke (1 iteration per bench) =="
# Absolute path: bench executables run with the bench crate as cwd.
BENCH_DIR="${BENCH_DIR:-$(pwd)/target/bench-smoke}"
BENCH_SMOKE=1 BENCH_DIR="$BENCH_DIR" cargo bench --offline -p bench

echo "== bench output =="
ls -l "$BENCH_DIR"/BENCH_*.json
ls -l "$BENCH_DIR"/TELEMETRY_*.json

echo "== telemetry: record/replay --metrics-out round trip =="
CLI=target/release/dejavu-cli
TDIR="$BENCH_DIR/telemetry-verify"
mkdir -p "$TDIR"
"$CLI" record racy_counter 3 "$TDIR/trace.bin" --metrics-out "$TDIR/record.json" > /dev/null
"$CLI" replay racy_counter 3 "$TDIR/trace.bin" --metrics-out "$TDIR/replay.json" > /dev/null
# Every emitted document must be valid *canonical* JSON by our own codec.
"$CLI" checkjson "$TDIR/record.json"
"$CLI" checkjson "$TDIR/replay.json"
for f in "$BENCH_DIR"/TELEMETRY_*.json; do
    "$CLI" checkjson "$f"
done

echo "== telemetry: byte-determinism (same run, same bytes) =="
"$CLI" record racy_counter 3 "$TDIR/trace2.bin" --metrics-out "$TDIR/record2.json" > /dev/null
cmp "$TDIR/record.json" "$TDIR/record2.json"
cmp "$TDIR/trace.bin" "$TDIR/trace2.bin"

echo "== telemetry: neutrality (fingerprints on == off) =="
"$CLI" neutrality racy_counter 3
"$CLI" neutrality producer_consumer 1
"$CLI" neutrality gc_churn 1

echo "== quickening: interp bench runs in both dispatch modes =="
# The interp bench itself asserts quickened and generic step counts match
# and its TELEMETRY sidecar is produced by an env-default-mode record —
# so running it with and without DJVM_NO_QUICKEN=1 and byte-comparing the
# sidecars proves the ablation is invisible to every recorded observable.
QDIR="$(pwd)/target/bench-quicken"
UDIR="$(pwd)/target/bench-noquicken"
BENCH_SMOKE=1 BENCH_DIR="$QDIR" cargo bench --offline -p bench --bench interp
BENCH_SMOKE=1 BENCH_DIR="$UDIR" DJVM_NO_QUICKEN=1 \
    cargo bench --offline -p bench --bench interp
test -s "$QDIR/BENCH_interp.json"
test -s "$UDIR/BENCH_interp.json"
"$CLI" checkjson "$QDIR/TELEMETRY_interp.json"
cmp "$QDIR/TELEMETRY_interp.json" "$UDIR/TELEMETRY_interp.json"

echo "verify: OK"
