#!/bin/sh
# Hermetic verification: build, test and bench-smoke the whole workspace
# with the network unplugged (--offline). Fails loudly if anything would
# need a registry fetch — the workspace must stay zero-dependency.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== bench smoke (1 iteration per bench) =="
# Absolute path: bench executables run with the bench crate as cwd.
BENCH_DIR="${BENCH_DIR:-$(pwd)/target/bench-smoke}"
BENCH_SMOKE=1 BENCH_DIR="$BENCH_DIR" cargo bench --offline -p bench

echo "== bench output =="
ls -l "$BENCH_DIR"/BENCH_*.json

echo "verify: OK"
