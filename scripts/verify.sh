#!/usr/bin/env bash
# Hermetic verification: build, test and bench-smoke the whole workspace
# with the network unplugged (--offline). Fails loudly if anything would
# need a registry fetch — the workspace must stay zero-dependency.
set -euo pipefail

cd "$(dirname "$0")/.."

# Every byte-comparison below must fail loudly if one of its inputs was
# never produced — a skipped cmp is a silently passing verification.
require() {
    for f in "$@"; do
        if [ ! -s "$f" ]; then
            echo "verify: missing or empty sidecar: $f" >&2
            exit 1
        fi
    done
}

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== bench smoke (1 iteration per bench) =="
# Absolute path: bench executables run with the bench crate as cwd.
BENCH_DIR="${BENCH_DIR:-$(pwd)/target/bench-smoke}"
BENCH_SMOKE=1 BENCH_DIR="$BENCH_DIR" cargo bench --offline -p bench

echo "== bench output =="
ls -l "$BENCH_DIR"/BENCH_*.json
ls -l "$BENCH_DIR"/TELEMETRY_*.json

echo "== telemetry: record/replay --metrics-out round trip =="
CLI=target/release/dejavu-cli
TDIR="$BENCH_DIR/telemetry-verify"
mkdir -p "$TDIR"
"$CLI" record racy_counter 3 "$TDIR/trace.bin" --metrics-out "$TDIR/record.json" > /dev/null
"$CLI" replay racy_counter 3 "$TDIR/trace.bin" --metrics-out "$TDIR/replay.json" > /dev/null
# Every emitted document must be valid *canonical* JSON by our own codec.
"$CLI" checkjson "$TDIR/record.json"
"$CLI" checkjson "$TDIR/replay.json"
for f in "$BENCH_DIR"/TELEMETRY_*.json; do
    "$CLI" checkjson "$f"
done

echo "== telemetry: byte-determinism (same run, same bytes) =="
"$CLI" record racy_counter 3 "$TDIR/trace2.bin" --metrics-out "$TDIR/record2.json" > /dev/null
require "$TDIR/record.json" "$TDIR/record2.json" "$TDIR/trace.bin" "$TDIR/trace2.bin"
cmp "$TDIR/record.json" "$TDIR/record2.json"
cmp "$TDIR/trace.bin" "$TDIR/trace2.bin"

echo "== telemetry: neutrality (fingerprints on == off) =="
"$CLI" neutrality racy_counter 3
"$CLI" neutrality producer_consumer 1
"$CLI" neutrality gc_churn 1

echo "== trace: block format is a pure observer (fig1 family, both formats) =="
TRDIR="$BENCH_DIR/trace-verify"
mkdir -p "$TRDIR"
for wl in fig1_ab fig1_hot fig1_cd; do
    "$CLI" record "$wl" 5 "$TRDIR/$wl.flat"  --trace-format flat \
        --metrics-out "$TRDIR/$wl.rec-flat.json"  > /dev/null
    "$CLI" record "$wl" 5 "$TRDIR/$wl.block" --trace-format block \
        --metrics-out "$TRDIR/$wl.rec-block.json" > /dev/null
    # The record metrics (fingerprint included) must be byte-identical
    # whichever on-disk format the trace took.
    require "$TRDIR/$wl.rec-flat.json" "$TRDIR/$wl.rec-block.json"
    cmp "$TRDIR/$wl.rec-flat.json" "$TRDIR/$wl.rec-block.json"
    grep -o '"fingerprint":[0-9]*' "$TRDIR/$wl.rec-flat.json" | head -1
    # Replay from each format: both must verify ACCURATE (exit 0) and
    # produce byte-identical replay metrics.
    "$CLI" replay "$wl" 5 "$TRDIR/$wl.flat"  --metrics-out "$TRDIR/$wl.rep-flat.json"  > /dev/null
    "$CLI" replay "$wl" 5 "$TRDIR/$wl.block" --metrics-out "$TRDIR/$wl.rep-block.json" > /dev/null
    require "$TRDIR/$wl.rep-flat.json" "$TRDIR/$wl.rep-block.json"
    cmp "$TRDIR/$wl.rep-flat.json" "$TRDIR/$wl.rep-block.json"
    # The block index prints as canonical JSON.
    "$CLI" trace inspect "$TRDIR/$wl.block" > "$TRDIR/$wl.inspect.json"
    "$CLI" checkjson "$TRDIR/$wl.inspect.json"
done

echo "== trace: corruption and divergence exit codes =="
# A truncated block trace is an I/O-grade error: exit 1, never a replay.
head -c 40 "$TRDIR/fig1_hot.block" > "$TRDIR/truncated.block"
rc=0
"$CLI" replay fig1_hot 5 "$TRDIR/truncated.block" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "verify: truncated trace replay exited $rc, want 1" >&2
    exit 1
fi
# Replaying under the wrong seed diverges from the fresh verification
# record: exit 2, distinct from I/O failures.
rc=0
"$CLI" replay fig1_hot 6 "$TRDIR/fig1_hot.block" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "verify: wrong-seed replay exited $rc, want 2" >&2
    exit 1
fi

echo "== profile: perturbation-free, byte-deterministic artifacts =="
PDIR="$BENCH_DIR/profile-verify"
rm -rf "$PDIR"; mkdir -p "$PDIR"
# Replay the same corpus-family trace twice with the flight recorder on:
# both artifact sets must be byte-identical, and the summaries canonical.
"$CLI" record fig1_hot 5 "$PDIR/trace.djvb" --trace-format block > /dev/null
"$CLI" profile fig1_hot 5 "$PDIR/trace.djvb" --out "$PDIR/run1" \
    > "$PDIR/summary1.json" 2> /dev/null
"$CLI" profile fig1_hot 5 "$PDIR/trace.djvb" --out "$PDIR/run2" \
    > "$PDIR/summary2.json" 2> /dev/null
require "$PDIR/run1/profile.chrome.json" "$PDIR/run2/profile.chrome.json" \
        "$PDIR/run1/profile.folded" "$PDIR/run2/profile.folded" \
        "$PDIR/summary1.json" "$PDIR/summary2.json"
cmp "$PDIR/run1/profile.chrome.json" "$PDIR/run2/profile.chrome.json"
cmp "$PDIR/run1/profile.folded" "$PDIR/run2/profile.folded"
cmp "$PDIR/summary1.json" "$PDIR/summary2.json"
"$CLI" checkjson "$PDIR/run1/profile.chrome.json"
"$CLI" checkjson "$PDIR/summary1.json"
# Neutrality across the CLI boundary: the fingerprint a *profiled* replay
# reports must equal the one the unprofiled replay metrics recorded.
"$CLI" replay fig1_hot 5 "$PDIR/trace.djvb" --metrics-out "$PDIR/replay.json" > /dev/null
require "$PDIR/replay.json"
fp_off=$(grep -o '"fingerprint":[0-9]*' "$PDIR/replay.json" | head -1)
fp_on=$(grep -o '"fingerprint":[0-9]*' "$PDIR/summary1.json" | head -1)
if [ -z "$fp_off" ] || [ "$fp_off" != "$fp_on" ]; then
    echo "verify: profiler perturbed the replay: off=$fp_off on=$fp_on" >&2
    exit 1
fi
# The known-hot fig1 spin loop tops the folded flamegraph output.
hot=$(sort -t' ' -k2 -rn "$PDIR/run1/profile.folded" | head -1)
case "$hot" in
    *";main "*|*";t2 "*) ;;
    *) echo "verify: unexpected hottest folded stack: $hot" >&2; exit 1 ;;
esac

echo "== corpus: replay the committed trace corpus against its policies =="
# The corpus is a committed artifact: a missing or empty corpus must fail
# loudly, not skip.
require tests/corpus/*.djvb tests/corpus/*.policy.json
"$CLI" check tests/corpus
# Injected fingerprint mismatch => policy violation, exit 2.
CDIR="$BENCH_DIR/corpus-verify"
rm -rf "$CDIR"; mkdir -p "$CDIR"
cp tests/corpus/* "$CDIR"/
sed 's/"expected_fingerprint":[0-9]*/"expected_fingerprint":12345/' \
    tests/corpus/clock_spin_s1.policy.json > "$CDIR/clock_spin_s1.policy.json"
rc=0
"$CLI" check "$CDIR" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "verify: corpus fingerprint mismatch exited $rc, want 2" >&2
    exit 1
fi
# Injected corrupt trace => I/O-grade error, exit 1.
cp tests/corpus/clock_spin_s1.policy.json "$CDIR/clock_spin_s1.policy.json"
head -c 40 tests/corpus/clock_spin_s1.djvb > "$CDIR/clock_spin_s1.djvb"
rc=0
"$CLI" check "$CDIR" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "verify: corrupt corpus trace exited $rc, want 1" >&2
    exit 1
fi
# Re-recording the corpus on an unchanged platform reproduces the
# committed bytes exactly (the corpus itself is deterministic).
"$CLI" corpus record "$CDIR/rerecord" > /dev/null
for f in tests/corpus/*; do
    require "$CDIR/rerecord/$(basename "$f")"
    cmp "$f" "$CDIR/rerecord/$(basename "$f")"
done

echo "== quickening: interp bench runs in both dispatch modes =="
# The interp bench itself asserts quickened and generic step counts match
# and its TELEMETRY sidecar is produced by an env-default-mode record —
# so running it with and without DJVM_NO_QUICKEN=1 and byte-comparing the
# sidecars proves the ablation is invisible to every recorded observable.
QDIR="$(pwd)/target/bench-quicken"
UDIR="$(pwd)/target/bench-noquicken"
BENCH_SMOKE=1 BENCH_DIR="$QDIR" cargo bench --offline -p bench --bench interp
BENCH_SMOKE=1 BENCH_DIR="$UDIR" DJVM_NO_QUICKEN=1 \
    cargo bench --offline -p bench --bench interp
require "$QDIR/BENCH_interp.json" "$UDIR/BENCH_interp.json"
require "$QDIR/TELEMETRY_interp.json" "$UDIR/TELEMETRY_interp.json"
"$CLI" checkjson "$QDIR/TELEMETRY_interp.json"
cmp "$QDIR/TELEMETRY_interp.json" "$UDIR/TELEMETRY_interp.json"

echo "== tier2: megablock ablation is invisible end to end =="
MDIR="$BENCH_DIR/mega-verify"
rm -rf "$MDIR"; mkdir -p "$MDIR"
# The committed corpus replays accurately under its policies with tier-2
# at its default (on) and ablated via the environment.
"$CLI" check tests/corpus
DJVM_NO_MEGA=1 "$CLI" check tests/corpus
# Recording fig1_hot in both modes yields byte-identical traces, and
# every guest-observable metric matches. (The full metrics documents are
# NOT cmp'd whole: the telemetry ring legitimately differs across the
# ablation — tier-up emits observer-side compile.mega events that shift
# ring sequence numbers, just like the interp bench's telemetry comment
# explains.)
"$CLI" record fig1_hot 5 "$MDIR/mega.djvb" \
    --metrics-out "$MDIR/rec-mega.json" > /dev/null
DJVM_NO_MEGA=1 "$CLI" record fig1_hot 5 "$MDIR/nomega.djvb" \
    --metrics-out "$MDIR/rec-nomega.json" > /dev/null
require "$MDIR/mega.djvb" "$MDIR/nomega.djvb" \
        "$MDIR/rec-mega.json" "$MDIR/rec-nomega.json"
cmp "$MDIR/mega.djvb" "$MDIR/nomega.djvb"
for f in rec-mega rec-nomega; do
    grep -o '"fingerprint":[0-9]*\|"state_digest":[0-9]*\|"steps":[0-9]*\|"cycles":[0-9]*\|"yield_points":[0-9]*\|"thread_switches":[0-9]*' \
        "$MDIR/$f.json" > "$MDIR/$f.fields"
done
require "$MDIR/rec-mega.fields" "$MDIR/rec-nomega.fields"
cmp "$MDIR/rec-mega.fields" "$MDIR/rec-nomega.fields"
# Cross-tier replay: the tier-2 trace drives an ablated replay and the
# ablated trace drives a tier-2 replay, both verifying ACCURATE (exit 0).
DJVM_NO_MEGA=1 "$CLI" replay fig1_hot 5 "$MDIR/mega.djvb" > /dev/null
"$CLI" replay fig1_hot 5 "$MDIR/nomega.djvb" > /dev/null
# The tier-up itself is observable where it belongs — the observer-side
# stats channel: nonzero tier_ups on fig1_hot, and the compile.mega ring
# event present exactly when tier-2 is on. (The ring retains the last 64
# events, so the event check uses lock_convoy, whose short run keeps the
# tier-up in the retained window; fig1_hot's thousands of switches evict
# it.)
"$CLI" stats fig1_hot 5 > "$MDIR/stats.json" 2> /dev/null
"$CLI" checkjson "$MDIR/stats.json"
if grep -q '"tier_ups":0' "$MDIR/stats.json"; then
    echo "verify: fig1_hot never tiered up" >&2
    exit 1
fi
"$CLI" stats lock_convoy 5 > "$MDIR/stats-convoy.json" 2> /dev/null
grep -q '"compile.mega"' "$MDIR/stats-convoy.json" || {
    echo "verify: no compile.mega event in tier-2 record telemetry" >&2
    exit 1
}
DJVM_NO_MEGA=1 "$CLI" stats lock_convoy 5 > "$MDIR/stats-ablated.json" 2> /dev/null
if grep -q '"compile.mega"' "$MDIR/stats-ablated.json"; then
    echo "verify: compile.mega event emitted under DJVM_NO_MEGA=1" >&2
    exit 1
fi
# The interp bench's TELEMETRY sidecar must also be byte-stable under the
# tier-2 ablation (its document pins mega off, so the ablation is a no-op
# by construction — this catches any leak of tier-2 state into it).
NMDIR="$(pwd)/target/bench-nomega"
BENCH_SMOKE=1 BENCH_DIR="$NMDIR" DJVM_NO_MEGA=1 \
    cargo bench --offline -p bench --bench interp
require "$NMDIR/TELEMETRY_interp.json"
cmp "$QDIR/TELEMETRY_interp.json" "$NMDIR/TELEMETRY_interp.json"

echo "== fleet: 64 concurrent sessions, fingerprint parity, clean shutdown =="
FDIR="$BENCH_DIR/fleet-verify"
rm -rf "$FDIR"; mkdir -p "$FDIR"
# Ephemeral port: the server binds port 0 and reports its pick.
"$CLI" fleet-serve 0 --fleet-token verify-token --port-file "$FDIR/port" \
    2> "$FDIR/server.log" &
FLEET_PID=$!
for _ in $(seq 1 100); do
    [ -s "$FDIR/port" ] && break
    sleep 0.1
done
require "$FDIR/port"
FLEET_PORT=$(cat "$FDIR/port")
FLEET_ADDR="127.0.0.1:$FLEET_PORT"
# The 64-session bench against the externally started server. The bench
# itself asserts every concurrently-hosted fingerprint equals its
# single-session ground truth (it aborts non-zero otherwise); the meta
# object carries the verdict and the latency quantiles.
BENCH_SMOKE=1 BENCH_DIR="$BENCH_DIR" FLEET_ADDR="$FLEET_ADDR" \
    cargo bench --offline -p bench --bench fleet
require "$BENCH_DIR/BENCH_FLEET.json" "$BENCH_DIR/TELEMETRY_FLEET.json"
"$CLI" checkjson "$BENCH_DIR/TELEMETRY_FLEET.json"
grep -q '"fingerprints_match":true' "$BENCH_DIR/BENCH_FLEET.json" || {
    echo "verify: fleet fingerprints diverged from single-session replays" >&2
    exit 1
}
grep -q '"p99_request_ns":[0-9]' "$BENCH_DIR/BENCH_FLEET.json" || {
    echo "verify: BENCH_FLEET.json missing p99 request latency" >&2
    exit 1
}
grep -q '"resident_peak":64' "$BENCH_DIR/BENCH_FLEET.json" || {
    echo "verify: fleet did not hold 64 sessions resident concurrently" >&2
    exit 1
}
# Live metrics snapshot: canonical JSON on stdout.
"$CLI" stats --fleet "$FLEET_ADDR" > "$FDIR/stats.json" 2> /dev/null
"$CLI" checkjson "$FDIR/stats.json"
grep -q '"peak":' "$FDIR/stats.json"
# Shutdown is token-gated: the wrong token is refused (exit 1)...
rc=0
"$CLI" fleet-shutdown "$FLEET_ADDR" wrong-token > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "verify: wrong-token fleet-shutdown exited $rc, want 1" >&2
    exit 1
fi
kill -0 "$FLEET_PID" 2> /dev/null || {
    echo "verify: fleet server died on a refused shutdown" >&2
    exit 1
}
# ...and the right token stops the server cleanly (exit 0 from the
# server process itself — every worker joined).
"$CLI" fleet-shutdown "$FLEET_ADDR" verify-token
rc=0
wait "$FLEET_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "verify: fleet server exited $rc on graceful shutdown, want 0" >&2
    exit 1
fi
grep -q "clean shutdown" "$FDIR/server.log"

echo "== store: 150+-run corpus, dedup >= 2x, byte-exact reconstruction =="
SDIR="$BENCH_DIR/store-verify"
rm -rf "$SDIR"; mkdir -p "$SDIR/traces"
STORE="$SDIR/store"
# The fig1 family across 17 seeds, each run put 3 times (the fleet-ingest
# pattern): first put verified (replay + fresh record before cataloging a
# fingerprint), the repeats unverified — they must dedup onto the same
# entry either way.
for wl in fig1_ab fig1_cd fig1_hot; do
    for seed in $(seq 1 17); do
        t="$SDIR/traces/$wl-$seed.djvb"
        "$CLI" record "$wl" "$seed" "$t" --trace-format block > /dev/null
        "$CLI" store put "$STORE" "$wl" "$seed" "$t" > /dev/null 2> /dev/null
        "$CLI" store put "$STORE" "$wl" "$seed" "$t" --no-verify > /dev/null 2> /dev/null
        "$CLI" store put "$STORE" "$wl" "$seed" "$t" --no-verify > /dev/null 2> /dev/null
    done
done
# Maintenance idempotence, byte-level: a second gc+compact pass over an
# unread store must leave every file untouched.
"$CLI" store gc "$STORE" > /dev/null 2> /dev/null
"$CLI" store compact "$STORE" > /dev/null 2> /dev/null
(cd "$STORE" && find . -type f | sort | xargs cksum) > "$SDIR/pass1.cksum"
"$CLI" store gc "$STORE" > /dev/null 2> /dev/null
"$CLI" store compact "$STORE" > /dev/null 2> /dev/null
(cd "$STORE" && find . -type f | sort | xargs cksum) > "$SDIR/pass2.cksum"
require "$SDIR/pass1.cksum" "$SDIR/pass2.cksum"
cmp "$SDIR/pass1.cksum" "$SDIR/pass2.cksum"
# The measured shape: canonical JSON, 150+ runs, dedup past the 2x line.
"$CLI" store stats "$STORE" > "$SDIR/stats.json" 2> /dev/null
"$CLI" checkjson "$SDIR/stats.json"
runs=$(grep -o '"runs":[0-9]*' "$SDIR/stats.json" | cut -d: -f2)
dedup=$(grep -o '"dedup_ratio_milli":[0-9]*' "$SDIR/stats.json" | cut -d: -f2)
if [ -z "$runs" ] || [ "$runs" -lt 100 ]; then
    echo "verify: store corpus holds $runs runs, want >= 100" >&2
    exit 1
fi
if [ -z "$dedup" ] || [ "$dedup" -lt 2000 ]; then
    echo "verify: store dedup ratio ${dedup} milli, want >= 2000 (2x)" >&2
    exit 1
fi
echo "store: runs=$runs dedup_ratio_milli=$dedup"
# Keying parity with `trace inspect --dedup`: the inspector's dedup
# summary over the same 51 distinct trace files must count exactly the
# unique blocks the store holds (both key by digest128 of the raw
# pre-compression payload).
"$CLI" trace inspect --dedup "$SDIR"/traces/*.djvb > "$SDIR/inspect.out" 2> /dev/null
tail -1 "$SDIR/inspect.out" > "$SDIR/dedup.json"
"$CLI" checkjson "$SDIR/dedup.json"
inspect_blocks=$(grep -o '"unique_blocks":[0-9]*' "$SDIR/dedup.json" | cut -d: -f2)
store_blocks=$(grep -o '"blocks":[0-9]*' "$SDIR/stats.json" | head -1 | cut -d: -f2)
if [ "$inspect_blocks" != "$store_blocks" ]; then
    echo "verify: inspect --dedup counts $inspect_blocks unique blocks," \
         "store holds $store_blocks — keying drifted" >&2
    exit 1
fi
# Byte-exact reconstruction out of the compacted store, and the
# store-served trace still replays ACCURATE (exit 0).
"$CLI" store ls "$STORE" > "$SDIR/store-ls.json" 2> /dev/null
sid=$(grep '"workload":"fig1_hot"' "$SDIR/store-ls.json" | grep '"seed":5,' \
    | sed 's/.*"id":"\([0-9a-f]*\)".*/\1/')
if [ -z "$sid" ]; then
    echo "verify: fig1_hot/5 missing from store catalog" >&2
    exit 1
fi
"$CLI" store get "$STORE" "$sid" "$SDIR/back.djvb" 2> /dev/null
require "$SDIR/back.djvb"
cmp "$SDIR/traces/fig1_hot-5.djvb" "$SDIR/back.djvb"
"$CLI" replay fig1_hot 5 "$SDIR/back.djvb" > /dev/null
# Exit-code contract at the store boundary: claiming the wrong seed is a
# divergence (2), not an I/O error.
rc=0
"$CLI" store put "$STORE" fig1_hot 6 "$SDIR/traces/fig1_hot-5.djvb" \
    > /dev/null 2> /dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "verify: wrong-seed store put exited $rc, want 2" >&2
    exit 1
fi

echo "verify: OK"
